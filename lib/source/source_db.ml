open Relalg
open Delta
open Sim

exception Source_error of string

let err fmt = Format.kasprintf (fun s -> raise (Source_error s)) fmt

type announce_mode = Adapter.announce_mode =
  | Immediate
  | Periodic of float
  | Never

type outage_mode = Adapter.outage_mode = Refuse | Black_hole

type poll_error = Adapter.poll_error =
  | Unavailable of { u_source : string; u_until : float option }
  | Timed_out of { t_source : string; t_timeout : float }

type retention = Adapter.retention = Keep_all | Keep_last of int

type link = {
  channel : Message.t Channel.t;
  q_proc_delay : float;
  comm_delay : float;
}

type t = {
  engine : Engine.t;
  name : string;
  schemas : (string * Schema.t) list;
  mutable tables : (string * Bag.t) list;
  mutable version : int;
  mutable history : (float * int * (string * Bag.t) list) list; (* newest first *)
  announce : announce_mode;
  mutable pending : Multi_delta.t;
  mutable pending_version : int; (* version after last staged commit *)
  mutable pending_commit_time : float;
  mutable announced_version : int; (* last version covered by a message *)
  mutable filters : (string * (string list * Predicate.t)) list;
  mutable link : link option;
  mutable announcements : int;
  mutable polls : int;
  mutable poll_failures : int;
  mutable outages : (float * float) list; (* [start, stop) windows *)
  mutable outage_mode : outage_mode;
  mutable retention : retention;
  mutable released : int; (* lowest version any consumer may still need *)
}

let create ~engine ~name ~relations ~announce () =
  let tables = List.map (fun (n, s) -> (n, Bag.empty s)) relations in
  {
    engine;
    name;
    schemas = relations;
    tables;
    version = 0;
    history = [ (Engine.now engine, 0, tables) ];
    announce;
    pending = Multi_delta.empty;
    pending_version = 0;
    pending_commit_time = Engine.now engine;
    announced_version = 0;
    filters = [];
    link = None;
    announcements = 0;
    polls = 0;
    poll_failures = 0;
    outages = [];
    outage_mode = Refuse;
    retention = Keep_all;
    released = 0;
  }

let name t = t.name
let engine t = t.engine
let relation_names t = List.map fst t.schemas
let announce_mode t = t.announce
let announces t = t.announce <> Never

(* Delay accessors for the Theorem 7.2 bound: the a-priori f̄ is built
   from exactly the delays this simulation models. *)
let ann_delay t =
  match t.announce with
  | Immediate -> 0.0
  | Periodic p -> p
  | Never -> Float.infinity

let comm_delay t =
  match t.link with Some l -> l.comm_delay | None -> 0.0

let q_proc_delay t =
  match t.link with Some l -> l.q_proc_delay | None -> 0.0

let schema t rel =
  match List.assoc_opt rel t.schemas with
  | Some s -> s
  | None -> err "source %s has no relation %S" t.name rel

let current t rel =
  match List.assoc_opt rel t.tables with
  | Some b -> b
  | None -> err "source %s has no relation %S" t.name rel

let version t = t.version

let set_filter t ~relation ~attrs ~cond =
  let schema = schema t relation in
  List.iter
    (fun a ->
      if not (Schema.mem schema a) then
        err "set_filter: %S has no attribute %S" relation a)
    (attrs @ Predicate.attrs cond);
  t.filters <- (relation, (attrs, cond)) :: List.remove_assoc relation t.filters

let filter_delta t rel d =
  match List.assoc_opt rel t.filters with
  | None -> d
  | Some (attrs, cond) -> Rel_delta.project attrs (Rel_delta.select cond d)

(* history entries strictly below the floor can no longer be asked
   for: drop them. The floor is the lowest version some consumer may
   still poll or check against — the release watermark a mediator
   advances as its reflected version moves, further bounded by a
   [Keep_last] retention if one is set. *)
let history_floor t =
  match t.retention with
  | Keep_all -> t.released
  | Keep_last n -> max t.released (t.version - max 1 n + 1)

let prune_history t =
  let floor = history_floor t in
  if floor > 0 then
    t.history <- List.filter (fun (_, v, _) -> v >= floor) t.history

let set_retention t retention =
  t.retention <- retention;
  prune_history t

let release t ~upto =
  if upto > t.released then begin
    t.released <- min upto t.version;
    prune_history t
  end

let flush_announcements t =
  match t.link with
  | None -> ()
  | Some link ->
    if t.announce <> Never && t.pending_version > t.announced_version then begin
      Channel.send link.channel
        (Message.Update
           {
             source = t.name;
             prev_version = t.announced_version;
             version = t.pending_version;
             commit_time = t.pending_commit_time;
             send_time = Engine.now t.engine;
             delta = t.pending;
           });
      t.announcements <- t.announcements + 1;
      t.announced_version <- t.pending_version;
      t.pending <- Multi_delta.empty
    end

let connect t ~comm_delay ~q_proc_delay handler =
  if Option.is_some t.link then err "source %s already connected" t.name;
  let channel = Channel.create t.engine ~delay:comm_delay handler in
  t.link <- Some { channel; q_proc_delay; comm_delay };
  match t.announce with
  | Periodic period ->
    let rec announcer () =
      Engine.sleep t.engine period;
      flush_announcements t;
      announcer ()
    in
    Engine.spawn t.engine announcer
  | Immediate | Never -> ()

let load t rel bag =
  if t.version <> 0 then err "source %s: load after first commit" t.name;
  ignore (schema t rel);
  t.tables <- (rel, bag) :: List.remove_assoc rel t.tables;
  (* version 0 snapshot reflects the loads *)
  t.history <- [ (Engine.now t.engine, 0, t.tables) ]

let commit t delta =
  List.iter
    (fun rel ->
      if not (List.mem_assoc rel t.schemas) then
        err "source %s: delta mentions unknown relation %S" t.name rel)
    (Multi_delta.relations delta);
  t.tables <-
    List.map
      (fun (rel, bag) ->
        match Multi_delta.find delta rel with
        | Some d -> (rel, Rel_delta.apply bag d)
        | None -> (rel, bag))
      t.tables;
  t.version <- t.version + 1;
  let now = Engine.now t.engine in
  t.history <- (now, t.version, t.tables) :: t.history;
  prune_history t;
  let staged =
    List.fold_left
      (fun acc rel ->
        match Multi_delta.find delta rel with
        | Some d ->
          let filtered = filter_delta t rel d in
          if Rel_delta.is_empty filtered then acc
          else Multi_delta.add acc rel filtered
        | None -> acc)
      Multi_delta.empty
      (Multi_delta.relations delta)
  in
  t.pending <- Multi_delta.smash t.pending staged;
  t.pending_version <- t.version;
  t.pending_commit_time <- now;
  match t.announce with
  | Immediate -> flush_announcements t
  | Periodic _ | Never -> ()

let set_outages t ?(mode = Refuse) windows =
  List.iter
    (fun (start, stop) ->
      if stop < start then err "set_outages: window [%g, %g) is empty" start stop)
    windows;
  t.outage_mode <- mode;
  t.outages <- windows

let is_down t =
  let now = Engine.now t.engine in
  List.exists (fun (start, stop) -> start <= now && now < stop) t.outages

let down_until t =
  let now = Engine.now t.engine in
  List.fold_left
    (fun acc (start, stop) ->
      if start <= now && now < stop then
        Some (match acc with Some u -> Float.max u stop | None -> stop)
      else acc)
    None t.outages

let try_poll t ?timeout queries =
  match t.link with
  | None -> err "source %s: poll before connect" t.name
  | Some link ->
    let started = Engine.now t.engine in
    (* request travels to the source *)
    Engine.sleep t.engine link.comm_delay;
    if is_down t then begin
      t.poll_failures <- t.poll_failures + 1;
      match t.outage_mode with
      | Refuse ->
        (* a refusal travels back immediately — a fast failure *)
        Engine.sleep t.engine link.comm_delay;
        Error (Unavailable { u_source = t.name; u_until = down_until t })
      | Black_hole -> (
        (* the request vanishes; the poller only learns by timeout *)
        match timeout with
        | Some tmo ->
          let remaining = tmo -. (Engine.now t.engine -. started) in
          if remaining > 0.0 then Engine.sleep t.engine remaining;
          Error (Timed_out { t_source = t.name; t_timeout = tmo })
        | None ->
          err
            "source %s: black-hole outage poll without a timeout would \
             deadlock"
            t.name)
    end
    else begin
      (* the source waits out its processing time *)
      Engine.sleep t.engine link.q_proc_delay;
      (* from here to the send the source acts atomically: the flush
         (ECA precondition — the answer must not reflect updates the
         mediator cannot see), the evaluation, and the version stamp
         all observe the same state, and FIFO delivery puts the
         flushed announcement ahead of the answer *)
      flush_announcements t;
      t.polls <- t.polls + 1;
      let env rel = List.assoc_opt rel t.tables in
      let results =
        List.map (fun (label, expr) -> (label, Eval.eval ~env expr)) queries
      in
      let answer =
        {
          Message.answer_source = t.name;
          answer_version = t.version;
          state_time = Engine.now t.engine;
          results;
        }
      in
      let ivar = Engine.Ivar.create () in
      Channel.send link.channel (Message.Answer (ivar, answer));
      match timeout with
      | None -> Ok (Engine.Ivar.read t.engine ivar)
      | Some tmo -> (
        let remaining = tmo -. (Engine.now t.engine -. started) in
        if remaining <= 0.0 then begin
          t.poll_failures <- t.poll_failures + 1;
          Error (Timed_out { t_source = t.name; t_timeout = tmo })
        end
        else
          match Engine.Ivar.read_timeout t.engine ivar ~timeout:remaining with
          | Some a -> Ok a
          | None ->
            (* the answer was delayed past the deadline or lost on the
               channel *)
            t.poll_failures <- t.poll_failures + 1;
            Error (Timed_out { t_source = t.name; t_timeout = tmo }))
    end

let poll t queries =
  match try_poll t queries with
  | Ok a -> a
  | Error (Unavailable { u_source; u_until }) ->
    err "source %s unavailable%s" u_source
      (match u_until with
      | Some u -> Printf.sprintf " (outage until %g)" u
      | None -> "")
  | Error (Timed_out { t_source; t_timeout }) ->
    err "source %s: poll timed out after %g" t_source t_timeout

let poll_error_to_string = function
  | Unavailable { u_source; u_until } ->
    Printf.sprintf "source %s unavailable%s" u_source
      (match u_until with
      | Some u -> Printf.sprintf " (outage until %g)" u
      | None -> "")
  | Timed_out { t_source; t_timeout } ->
    Printf.sprintf "source %s: poll timed out after %g" t_source t_timeout

let history t = List.rev t.history

let state_at_version t v =
  match List.find_opt (fun (_, v', _) -> v' = v) t.history with
  | Some (_, _, state) -> state
  | None -> err "source %s has no version %d" t.name v

let commit_time_of_version t v =
  match List.find_opt (fun (_, v', _) -> v' = v) t.history with
  | Some (time, _, _) -> time
  | None -> err "source %s has no version %d" t.name v

let next_commit_time_after t v =
  (* history is newest-first *)
  let rec scan = function
    | (time, v', _) :: rest ->
      if v' = v + 1 then Some time else if v' <= v then None else scan rest
    | [] -> None
  in
  scan t.history

let announcements_sent t = t.announcements
let polls_served t = t.polls
let poll_failures t = t.poll_failures
let history_length t = List.length t.history

let channel t = Option.map (fun l -> l.channel) t.link

let with_channel t f =
  match t.link with
  | None -> err "source %s: not connected" t.name
  | Some l -> f l.channel

let set_channel_policy t policy =
  with_channel t (fun ch -> Channel.set_policy ch policy)

let set_link_up t up = with_channel t (fun ch -> Channel.set_link ch ~up)
let in_flight t = match t.link with None -> 0 | Some l -> Channel.in_flight l.channel

(* --- the relational adapter ------------------------------------------- *)

let adapter t =
  {
    Adapter.a_kind = "relational";
    a_name = t.name;
    a_engine = t.engine;
    a_relation_names = (fun () -> relation_names t);
    a_schema =
      (fun rel ->
        try schema t rel
        with Source_error msg -> raise (Adapter.Adapter_error msg));
    a_announce_mode = (fun () -> t.announce);
    a_ann_delay = (fun () -> ann_delay t);
    a_comm_delay = (fun () -> comm_delay t);
    a_q_proc_delay = (fun () -> q_proc_delay t);
    a_connect =
      (fun ~comm_delay ~q_proc_delay handler ->
        connect t ~comm_delay ~q_proc_delay handler);
    a_load = (fun rel bag -> load t rel bag);
    a_set_filter =
      (fun ~relation ~attrs ~cond -> set_filter t ~relation ~attrs ~cond);
    a_commit = (fun md -> commit t md);
    a_current = (fun rel -> current t rel);
    a_version = (fun () -> version t);
    a_flush_announcements = (fun () -> flush_announcements t);
    a_try_poll = (fun ?timeout queries -> try_poll t ?timeout queries);
    a_set_outages = (fun ?mode windows -> set_outages t ?mode windows);
    a_is_down = (fun () -> is_down t);
    a_set_channel_policy = (fun policy -> set_channel_policy t policy);
    a_set_link_up = (fun up -> set_link_up t up);
    a_channel = (fun () -> channel t);
    a_in_flight = (fun () -> in_flight t);
    a_history = (fun () -> history t);
    a_set_retention = (fun r -> set_retention t r);
    a_release = (fun ~upto -> release t ~upto);
    a_history_length = (fun () -> history_length t);
    a_state_at_version = (fun v -> state_at_version t v);
    a_commit_time_of_version = (fun v -> commit_time_of_version t v);
    a_next_commit_time_after = (fun v -> next_commit_time_after t v);
    a_announcements_sent = (fun () -> announcements_sent t);
    a_polls_served = (fun () -> polls_served t);
    a_poll_failures = (fun () -> poll_failures t);
  }

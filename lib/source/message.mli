(** Messages travelling from a source database to a mediator.

    Both incremental-update announcements and poll answers ride the
    {e same} FIFO channel. This ordering is load-bearing: it guarantees
    that when a poll answer reflecting source version [v] arrives,
    every update announcement up to [v] has already arrived (it is in
    the mediator's update queue or already processed) — exactly the
    precondition the Eager-Compensation step of Sec. 6.3 needs to roll
    a polled answer back to the state the mediator's materialized data
    reflects. *)

open Relalg
open Delta
open Sim

type update = {
  source : string;
  prev_version : int;
      (** source version the previous announcement brought the
          receiver to — the delta covers versions
          [(prev_version, version]]. Lets a mediator detect a dropped
          announcement: an arriving update whose [prev_version]
          exceeds every version it has seen implies a gap. *)
  version : int;  (** source version after the last included commit *)
  commit_time : float;  (** commit time of the last included commit *)
  send_time : float;
  delta : Multi_delta.t;
      (** net delta over the source's relations since the previous
          announcement (one "undividable" message, Sec. 4) *)
}

type answer = {
  answer_source : string;
  answer_version : int;  (** source version the results reflect *)
  state_time : float;  (** when the source evaluated the queries *)
  results : (string * Bag.t) list;  (** keyed by request label *)
}

type t =
  | Update of update
  | Answer of answer Engine.Ivar.t * answer
      (** the receiving end fills the ivar on delivery, waking the
          mediator process blocked in [Source_db.poll] *)

val pp : Format.formatter -> t -> unit

open Relalg
open Delta
open Sim

type update = {
  source : string;
  prev_version : int;
  version : int;
  commit_time : float;
  send_time : float;
  delta : Multi_delta.t;
}

type answer = {
  answer_source : string;
  answer_version : int;
  state_time : float;
  results : (string * Bag.t) list;
}

type t = Update of update | Answer of answer Engine.Ivar.t * answer

let pp fmt = function
  | Update u ->
    Format.fprintf fmt "update[%s v%d @%g: %d atoms]" u.source u.version
      u.send_time
      (Multi_delta.atom_count u.delta)
  | Answer (_, a) ->
    Format.fprintf fmt "answer[%s v%d: %d relations]" a.answer_source
      a.answer_version (List.length a.results)

open Relalg
open Delta
open Sim

type announce_mode = Immediate | Periodic of float | Never
type outage_mode = Refuse | Black_hole

type poll_error =
  | Unavailable of { u_source : string; u_until : float option }
  | Timed_out of { t_source : string; t_timeout : float }

type retention = Keep_all | Keep_last of int

exception Adapter_error of string

type t = {
  a_kind : string;
  a_name : string;
  a_engine : Engine.t;
  a_relation_names : unit -> string list;
  a_schema : string -> Schema.t;
  a_announce_mode : unit -> announce_mode;
  a_ann_delay : unit -> float;
  a_comm_delay : unit -> float;
  a_q_proc_delay : unit -> float;
  a_connect :
    comm_delay:float -> q_proc_delay:float -> (Message.t -> unit) -> unit;
  a_load : string -> Bag.t -> unit;
  a_set_filter :
    relation:string -> attrs:string list -> cond:Predicate.t -> unit;
  a_commit : Multi_delta.t -> unit;
  a_current : string -> Bag.t;
  a_version : unit -> int;
  a_flush_announcements : unit -> unit;
  a_try_poll :
    ?timeout:float ->
    (string * Expr.t) list ->
    (Message.answer, poll_error) result;
  a_set_outages : ?mode:outage_mode -> (float * float) list -> unit;
  a_is_down : unit -> bool;
  a_set_channel_policy : Sim.Channel.policy option -> unit;
  a_set_link_up : bool -> unit;
  a_channel : unit -> Message.t Sim.Channel.t option;
  a_in_flight : unit -> int;
  a_history : unit -> (float * int * (string * Bag.t) list) list;
  a_set_retention : retention -> unit;
  a_release : upto:int -> unit;
  a_history_length : unit -> int;
  a_state_at_version : int -> (string * Bag.t) list;
  a_commit_time_of_version : int -> float;
  a_next_commit_time_after : int -> float option;
  a_announcements_sent : unit -> int;
  a_polls_served : unit -> int;
  a_poll_failures : unit -> int;
}

let err fmt = Format.kasprintf (fun s -> raise (Adapter_error s)) fmt

let kind t = t.a_kind
let name t = t.a_name
let engine t = t.a_engine
let relation_names t = t.a_relation_names ()
let schema t rel = t.a_schema rel
let announce_mode t = t.a_announce_mode ()
let announces t = announce_mode t <> Never
let ann_delay t = t.a_ann_delay ()
let comm_delay t = t.a_comm_delay ()
let q_proc_delay t = t.a_q_proc_delay ()

let connect t ~comm_delay ~q_proc_delay handler =
  t.a_connect ~comm_delay ~q_proc_delay handler

let load t rel bag = t.a_load rel bag
let set_filter t ~relation ~attrs ~cond = t.a_set_filter ~relation ~attrs ~cond
let commit t md = t.a_commit md
let current t rel = t.a_current rel
let version t = t.a_version ()
let flush_announcements t = t.a_flush_announcements ()
let try_poll t ?timeout requests = t.a_try_poll ?timeout requests

let poll_error_to_string = function
  | Unavailable { u_source; u_until } ->
    let until =
      match u_until with
      | Some u -> Printf.sprintf " (until %g)" u
      | None -> ""
    in
    Printf.sprintf "source %s unavailable%s" u_source until
  | Timed_out { t_source; t_timeout } ->
    Printf.sprintf "poll of %s timed out after %g" t_source t_timeout

let poll t requests =
  match try_poll t requests with
  | Ok answer -> answer
  | Error e -> err "%s" (poll_error_to_string e)

let set_outages t ?mode windows = t.a_set_outages ?mode windows
let is_down t = t.a_is_down ()
let set_channel_policy t policy = t.a_set_channel_policy policy
let set_link_up t up = t.a_set_link_up up
let channel t = t.a_channel ()
let in_flight t = t.a_in_flight ()
let history t = t.a_history ()
let set_retention t r = t.a_set_retention r
let release t ~upto = t.a_release ~upto
let history_length t = t.a_history_length ()
let state_at_version t v = t.a_state_at_version v
let commit_time_of_version t v = t.a_commit_time_of_version v
let next_commit_time_after t v = t.a_next_commit_time_after v
let announcements_sent t = t.a_announcements_sent ()
let polls_served t = t.a_polls_served ()
let poll_failures t = t.a_poll_failures ()

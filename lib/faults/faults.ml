open Sim
open Sources

type profile = {
  p_name : string;
  p_drop : float;
  p_dup : float;
  p_jitter : float;
  p_reorder : bool;
  p_outage : (float * float) list;
  p_outage_mode : Adapter.outage_mode;
}

let none =
  {
    p_name = "none";
    p_drop = 0.0;
    p_dup = 0.0;
    p_jitter = 0.0;
    p_reorder = false;
    p_outage = [];
    p_outage_mode = Adapter.Refuse;
  }

(* Delay jitter only: stresses timing assumptions (flush ticks racing
   deliveries) while the FIFO clamp still preserves order, so no
   recovery machinery should ever fire. *)
let jitter = { none with p_name = "jitter"; p_jitter = 0.8 }

(* Message loss: dropped announcements leave gaps the mediator must
   detect (prev_version) and repair by leaf resync. *)
let drop = { none with p_name = "drop"; p_drop = 0.2; p_jitter = 0.2 }

(* Message duplication: replayed announcements must be discarded by
   version monotonicity, duplicated answers by the ivar guard. *)
let dup = { none with p_name = "dup"; p_dup = 0.3; p_jitter = 0.2 }

(* The source refuses polls inside the outage windows (fractions of
   the fault window, see [apply]): exercises retry/backoff and, when
   the budget runs out, degraded stale answers. *)
let outage =
  {
    none with
    p_name = "outage";
    p_outage = [ (0.0, 0.45); (0.6, 0.9) ];
    p_outage_mode = Adapter.Refuse;
  }

(* Like [outage] but the request silently vanishes: only per-poll
   timeouts reveal the failure. *)
let blackhole =
  {
    none with
    p_name = "blackhole";
    p_outage = [ (0.1, 0.55) ];
    p_outage_mode = Adapter.Black_hole;
  }

(* Jitter with the FIFO clamp off: answers can overtake announcements
   and vice versa, invalidating the ECA baseline — the desync check
   must catch it and trigger resync. Relaxes the paper's Sec. 4
   ordered-delivery assumption outright. *)
let reorder = { none with p_name = "reorder"; p_jitter = 1.0; p_reorder = true }

(* Everything at once. *)
let chaos =
  {
    none with
    p_name = "chaos";
    p_drop = 0.12;
    p_dup = 0.12;
    p_jitter = 0.6;
    p_outage = [ (0.3, 0.55) ];
    p_outage_mode = Adapter.Refuse;
  }

let all = [ none; jitter; drop; dup; outage; blackhole; reorder; chaos ]

let names = List.map (fun p -> p.p_name) all

let name p = p.p_name

let by_name n = List.find_opt (fun p -> String.equal p.p_name n) all

(* Independent generator per (seed, source): fault decisions at one
   source never shift the random sequence of another, so shrinking a
   failing matrix entry keeps its behaviour. *)
let rng_for ~seed src =
  Random.State.make [| 0x5eed; seed; Hashtbl.hash (Adapter.name src) |]

let policy_of ~engine ~rng ~window:(w_start, w_stop) p =
  let decide () =
    let now = Engine.now engine in
    if now < w_start || now >= w_stop then Channel.no_fault
    else
      (* draw in a fixed order so the consumed randomness per decision
         is constant regardless of which faults are enabled *)
      let drop_draw = Random.State.float rng 1.0 in
      let dup_draw = Random.State.float rng 1.0 in
      let jitter_draw =
        if p.p_jitter > 0.0 then Random.State.float rng p.p_jitter else 0.0
      in
      {
        Channel.d_drop = drop_draw < p.p_drop;
        d_dup = (if dup_draw < p.p_dup then 1 else 0);
        d_jitter = jitter_draw;
      }
  in
  { Channel.decide; reorder = p.p_reorder }

let apply ~engine ~seed ~window p sources =
  let w_start, w_stop = window in
  if w_stop < w_start then
    invalid_arg "Faults.apply: empty fault window";
  let span = w_stop -. w_start in
  List.iter
    (fun src ->
      let rng = rng_for ~seed src in
      Adapter.set_channel_policy src
        (Some (policy_of ~engine ~rng ~window p));
      if p.p_outage <> [] then
        Adapter.set_outages src ~mode:p.p_outage_mode
          (List.map
             (fun (a, b) -> (w_start +. (a *. span), w_start +. (b *. span)))
             p.p_outage))
    sources

let clear sources =
  List.iter
    (fun src ->
      Adapter.set_channel_policy src None;
      Adapter.set_outages src [])
    sources

(** Deterministic, seed-driven fault injection.

    A {!profile} bundles the fault knobs of the source→mediator
    channels ({!Sim.Channel.policy}: drop, duplicate, delay jitter,
    optional reordering) with source outage windows
    ({!Sources.Adapter.set_outages}). {!apply} installs a profile on
    a set of sources for a window of simulated time, seeding one
    independent RNG per (seed, source) — two runs with the same seed,
    profile, and workload replay the exact same fault sequence, so a
    failing chaos-matrix entry reproduces from its seed alone.

    The paper (Sec. 4) assumes reliable, order-preserving channels;
    every profile except [reorder] keeps the FIFO clamp and merely
    delays, loses, or repeats messages — faults the mediator's
    recovery layer (gap detection, retry/backoff, degraded answers,
    resync) must absorb. [reorder] relaxes the ordering assumption
    itself. *)

open Sim
open Sources

type profile = {
  p_name : string;
  p_drop : float;  (** per-message drop probability *)
  p_dup : float;  (** per-message duplication probability *)
  p_jitter : float;  (** extra delay, uniform in [0, p_jitter) *)
  p_reorder : bool;  (** disable the FIFO clamp (paper relaxation) *)
  p_outage : (float * float) list;
      (** outage windows as fractions of the fault window *)
  p_outage_mode : Adapter.outage_mode;
}

(** {1 Named profiles} *)

val none : profile

val jitter : profile
(** Delay noise only; FIFO preserved. *)

val drop : profile
(** Lost announcements: gap detection must trigger resync. *)

val dup : profile
(** Replayed messages: deduplicated by version monotonicity. *)

val outage : profile
(** Refused polls: retry/backoff, then degraded answers. *)

val blackhole : profile
(** Vanished polls: only per-poll timeouts reveal the failure. *)

val reorder : profile
(** Unordered delivery: the desync check must force resync. *)

val chaos : profile
(** All of the above at once. *)

val all : profile list
val names : string list
val name : profile -> string
val by_name : string -> profile option

(** {1 Installation} *)

val apply :
  engine:Engine.t ->
  seed:int ->
  window:float * float ->
  profile ->
  Adapter.t list ->
  unit
(** Install the profile's channel policy on every source (sources must
    be connected) and schedule its outage windows, all scaled into
    [window] — outside it the policy injects nothing, so runs can
    initialize cleanly, suffer faults, heal, and be checked for
    convergence. *)

val clear : Adapter.t list -> unit
(** Remove policies and outage windows. *)

(* Mediators compose: a mediator's exports can themselves be served
   through the source-adapter contract (Med_source), so a parent
   mediator integrates them exactly like any other source — the
   paper's composability claim made executable.

   The topology here is a two-tier integration:

     dbEast --> [child East] --BigEast--+
                                        +--> [parent] AllBig
     dbWest --> [child West] --BigWest--+

   Each regional child filters its own orders database down to the
   big-ticket orders; the parent unions the two regional exports.
   Updates are committed only at the bottom (the children's own
   sources) and ripple up two tiers: child update transaction ->
   export delta -> mirrored source version -> announcement -> parent
   update transaction. The Sec. 3 checker then audits the parent's
   answers against the mirrored source histories.

   Run with: dune exec examples/mediator_composition.exe *)

open Relalg
open Vdp
open Sim
open Sources
open Squirrel
open Workload
open Delta

let section title = Printf.printf "\n=== %s ===\n%!" title

let schema_orders =
  Schema.make ~key:[ "oid" ]
    [ ("oid", Value.TInt); ("cust", Value.TInt); ("amt", Value.TInt) ]

let order oid cust amt =
  Tuple.of_list
    [ ("oid", Value.Int oid); ("cust", Value.Int cust); ("amt", Value.Int amt) ]

(* a regional child: one orders database, one filtered export *)
let make_child ~engine ~region ~relation ~export ~rows =
  let db =
    Source_db.create ~engine ~name:("db" ^ region)
      ~relations:[ (relation, schema_orders) ]
      ~announce:Source_db.Immediate ()
  in
  Source_db.load db relation (Bag.of_tuples schema_orders rows);
  let b =
    Builder.create
      ~source_of:(fun r -> if r = relation then Some ("db" ^ region) else None)
      ~schema_of:(fun r -> if r = relation then Some schema_orders else None)
      ()
  in
  Builder.add_export b ~name:export
    (Parser.expr (Printf.sprintf "select amt >= 100 (%s)" relation));
  let vdp = Builder.build b in
  let med =
    Mediator.create ~engine ~vdp
      ~annotation:(Annotation.fully_materialized vdp)
      ~sources:[ Source_db.adapter db ] ()
  in
  Mediator.connect med ();
  (db, med)

let () =
  let engine = Engine.create () in

  section "Tier 1: two regional child mediators";
  let db_east, child_east =
    make_child ~engine ~region:"East" ~relation:"OrdersE" ~export:"BigEast"
      ~rows:[ order 1 7 250; order 2 8 40; order 3 7 120 ]
  in
  let db_west, child_west =
    make_child ~engine ~region:"West" ~relation:"OrdersW" ~export:"BigWest"
      ~rows:[ order 100 9 300; order 101 9 15 ]
  in
  Engine.spawn engine (fun () -> Mediator.initialize child_east);
  Engine.spawn engine (fun () -> Mediator.initialize child_west);
  Engine.run engine ~until:1.0;
  let export_size child node =
    match Med.store_env child node with Some b -> Bag.cardinal b | None -> 0
  in
  Printf.printf "child East exports BigEast (%d big orders of %d)\n"
    (export_size child_east "BigEast")
    (Bag.cardinal (Source_db.current db_east "OrdersE"));
  Printf.printf "child West exports BigWest (%d big orders of %d)\n"
    (export_size child_west "BigWest")
    (Bag.cardinal (Source_db.current db_west "OrdersW"));

  section "Tier 2: wrap each child as a source";
  let ms_east = Med_source.create ~name:"medEast" child_east in
  let ms_west = Med_source.create ~name:"medWest" child_west in
  let src_east = Med_source.adapter ms_east in
  let src_west = Med_source.adapter ms_west in
  List.iter
    (fun a ->
      Printf.printf "%-8s kind=%-8s relations=[%s] version=%d\n"
        (Adapter.name a) (Adapter.kind a)
        (String.concat ", " (Adapter.relation_names a))
        (Adapter.version a))
    [ src_east; src_west ];

  let b =
    Builder.create
      ~source_of:(function
        | "BigEast" -> Some "medEast" | "BigWest" -> Some "medWest"
        | _ -> None)
      ~schema_of:(function
        | "BigEast" | "BigWest" -> Some schema_orders | _ -> None)
      ()
  in
  Builder.add_export b ~name:"AllBig" (Parser.expr "BigEast union BigWest");
  let vdp = Builder.build b in
  let env = { Scenario.engine; sources = [ src_east; src_west ]; vdp } in
  let parent =
    Scenario.mediator env ~annotation:(Annotation.fully_materialized vdp) ()
  in
  Engine.spawn engine (fun () -> Mediator.initialize parent);
  Engine.run engine ~until:(Engine.now engine +. 1.0);

  section "Initial answer at the top tier";
  let show () =
    let ans = ref None in
    Engine.spawn engine (fun () ->
        ans := Some (Mediator.query parent ~node:"AllBig" ()));
    Engine.run engine ~until:(Engine.now engine +. 30.0);
    match !ans with
    | None -> failwith "query did not complete"
    | Some a ->
      Format.printf "AllBig = %a@." Bag.pp a.Qp.tuples;
      Printf.printf "  quality %s, reflects [%s]\n"
        (match a.Qp.quality with Qp.Fresh -> "fresh" | Qp.Stale _ -> "stale")
        (String.concat "; "
           (List.map
              (fun (s, e) ->
                Printf.sprintf "%s=%s" s
                  (match e with
                  | Med.Version v -> Printf.sprintf "v%d" v
                  | Med.Current -> "current"))
              a.Qp.reflect));
      a.Qp.tuples
  in
  let before = show () in
  assert (Bag.cardinal before = 3);

  section "Updates at the bottom tier ripple up two levels";
  let commit db rel f t =
    Source_db.commit db
      (Multi_delta.singleton rel (f (Rel_delta.empty schema_orders) t))
  in
  Printf.printf "insert OrdersE (4, 8, 999)   -- big: joins the union\n";
  commit db_east "OrdersE" Rel_delta.insert (order 4 8 999);
  Printf.printf "insert OrdersW (102, 9, 20)  -- small: filtered at tier 1\n";
  commit db_west "OrdersW" Rel_delta.insert (order 102 9 20);
  Printf.printf "delete OrdersW (100, 9, 300) -- removes a big order\n";
  commit db_west "OrdersW" Rel_delta.delete (order 100 9 300);
  Scenario.run_to_quiescence env parent;
  let after = show () in
  assert (Bag.cardinal after = 3);
  Printf.printf "mirrored versions now: %s=v%d, %s=v%d\n"
    (Adapter.name src_east) (Adapter.version src_east)
    (Adapter.name src_west) (Adapter.version src_west);

  section "Consistency audit over the mirrored histories";
  let report =
    Correctness.Checker.check ~vdp ~sources:env.Scenario.sources
      ~events:(Mediator.events parent) ()
  in
  Printf.printf "checked %d answers against medEast/medWest histories: %s\n"
    report.Correctness.Checker.checked_queries
    (if Correctness.Checker.consistent report then "CONSISTENT"
     else "INCONSISTENT");
  assert (Correctness.Checker.consistent report)

(* Quickstart: Example 2.1 end-to-end.

   Two autonomous source databases hold R(r1,r2,r3,r4) and S(s1,s2,s3).
   We generate a Squirrel mediator for the integrated view

     T = π_{r1,r3,s1,s2}( σ_{r4=100} R  ⋈_{r2=s1}  σ_{s3<50} S )

   with everything materialized (fully materialized support), commit
   updates at the sources, and watch the mediator keep T fresh by pure
   incremental propagation — no source is ever polled after the
   initial load.

   Run with: dune exec examples/quickstart.exe *)

open Relalg
open Sim
open Sources
open Squirrel
open Workload

let section title = Printf.printf "\n=== %s ===\n%!" title

let () =
  section "Setup: two sources, one integrated view";
  let env = Scenario.make_fig1 ~seed:1 () in
  let med =
    Scenario.mediator env
      ~annotation:(Scenario.ann_ex21 env.Scenario.vdp)
      ()
  in
  print_endline (Mediator.describe med);

  section "Initialization (t_view_init)";
  Engine.spawn env.Scenario.engine (fun () -> Mediator.initialize med);
  Engine.run env.Scenario.engine ~until:1.0;
  Printf.printf "initial polls: %d (one per source)\n"
    (Obs.Metrics.value (Mediator.stats med).Med.polls);

  section "Query the view";
  let show_query () =
    Engine.spawn env.Scenario.engine (fun () ->
        let answer = Mediator.query med ~node:"T" () in
        Printf.printf "T has %d tuples at t=%.2f\n" (Bag.cardinal answer.Qp.tuples)
          (Engine.now env.Scenario.engine))
  in
  show_query ();
  Engine.run env.Scenario.engine
    ~until:(Engine.now env.Scenario.engine +. 1.0);

  section "Commit updates at the sources";
  let db1 = Scenario.source env "db1" in
  let insert_r r1 r2 r4 =
    let tuple =
      Tuple.of_list
        [
          ("r1", Value.Int r1);
          ("r2", Value.Int r2);
          ("r3", Value.Int (r1 mod 7));
          ("r4", Value.Int r4);
        ]
    in
    Adapter.commit db1 (Driver.single_insert db1 "R" tuple)
  in
  insert_r 1001 3 100;
  (* passes the selection: will reach T *)
  insert_r 1002 4 200;
  (* filtered out by r4 = 100: never leaves the leaf-parent *)
  Printf.printf "committed 2 transactions at db1 (versions now %d)\n"
    (Adapter.version db1);

  section "Incremental propagation";
  Scenario.run_to_quiescence env med;
  Printf.printf "update transactions: %d, atoms propagated: %d, polls: %d\n"
    (Obs.Metrics.value (Mediator.stats med).Med.update_txs)
    (Obs.Metrics.value (Mediator.stats med).Med.propagated_atoms)
    (Obs.Metrics.value (Mediator.stats med).Med.polls);
  show_query ();
  Engine.run env.Scenario.engine
    ~until:(Engine.now env.Scenario.engine +. 1.0);

  section "Consistency check (Theorem 7.1, empirically)";
  let report =
    Correctness.Checker.check ~vdp:env.Scenario.vdp
      ~sources:env.Scenario.sources ~events:(Mediator.events med) ()
  in
  Printf.printf "queries checked: %d, violations: %d -> %s\n"
    report.Correctness.Checker.checked_queries
    (List.length report.Correctness.Checker.violations)
    (if Correctness.Checker.consistent report then "CONSISTENT" else "BROKEN");
  List.iter
    (fun (src, s) -> Printf.printf "max staleness of %s: %.3f\n" src s)
    report.Correctness.Checker.max_staleness

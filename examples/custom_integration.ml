(* Building your own integration from scratch — the full user journey
   a downstream adopter would follow, with view definitions written in
   the textual syntax of Relalg.Parser:

     1. declare source databases and their relations
     2. state the integrated view as text
     3. let the Builder derive the VDP and the Advisor pick an
        annotation from your workload statistics
     4. deploy, load, update, query — and verify consistency

   The domain: a logistics company integrating a shipments database
   and a fleet database into views of late shipments per vehicle.

   Run with: dune exec examples/custom_integration.exe *)

open Relalg
open Vdp
open Sim
open Sources
open Squirrel
open Delta

let section title = Printf.printf "\n=== %s ===\n%!" title

(* -- 1. sources --------------------------------------------------------- *)

let schema_shipments =
  Schema.make ~key:[ "sid" ]
    [
      ("sid", Value.TInt);
      ("vehicle", Value.TInt);
      ("eta", Value.TInt);
      ("age", Value.TInt);
    ]

let schema_fleet =
  Schema.make ~key:[ "vehicle" ]
    [ ("vehicle", Value.TInt); ("depot", Value.TInt); ("capacity", Value.TInt) ]

let source_of = function
  | "Shipments" -> Some "ops_db"
  | "Fleet" -> Some "fleet_db"
  | _ -> None

let schema_of = function
  | "Shipments" -> Some schema_shipments
  | "Fleet" -> Some schema_fleet
  | _ -> None

(* -- 2. the view, as text ------------------------------------------------ *)

let late_def =
  Parser.expr
    "project sid, vehicle, depot, age (\n\
    \  select age > eta (Shipments)\n\
    \  join\n\
    \  Fleet\n\
     )"

(* -- driver -------------------------------------------------------------- *)

let () =
  section "Parsed view definition";
  Format.printf "LateByVehicle := %a@." Expr.pp late_def;

  section "Builder: derive the VDP";
  let b = Builder.create ~source_of ~schema_of () in
  Builder.add_export b ~name:"LateByVehicle" late_def;
  let vdp = Builder.build b in
  Format.printf "%a@." Graph.pp vdp;

  section "Advisor: annotate from workload statistics";
  (* shipments churn constantly; the fleet barely changes; queries
     mostly ask which vehicles are late (not capacity details) *)
  let profile =
    {
      (Cost.uniform_profile ()) with
      Cost.update_rate = (function "Shipments" -> 80.0 | _ -> 0.5);
      Cost.attr_access =
        (fun _ attr -> if String.equal attr "depot" then 0.05 else 0.9);
    }
  in
  let annotation, reasons = Advisor.advise vdp profile in
  List.iter (fun r -> Printf.printf "  - %s\n" r) reasons;
  Printf.printf "%s\n" (Annotation.to_string annotation);

  section "Deploy";
  let engine = Engine.create () in
  let ops_db =
    Source_db.create ~engine ~name:"ops_db"
      ~relations:[ ("Shipments", schema_shipments) ]
      ~announce:Source_db.Immediate ()
  in
  let fleet_db =
    Source_db.create ~engine ~name:"fleet_db"
      ~relations:[ ("Fleet", schema_fleet) ]
      ~announce:(Source_db.Periodic 5.0) ()
  in
  let rng = Workload.Datagen.state 8 in
  Source_db.load fleet_db "Fleet"
    (Workload.Datagen.bag rng schema_fleet
       [
         { Workload.Datagen.c_attr = "vehicle"; c_min = 0; c_max = 0 };
         { Workload.Datagen.c_attr = "depot"; c_min = 1; c_max = 4 };
         { Workload.Datagen.c_attr = "capacity"; c_min = 10; c_max = 40 };
       ]
       ~size:12);
  Source_db.load ops_db "Shipments"
    (Workload.Datagen.bag rng schema_shipments
       [
         { Workload.Datagen.c_attr = "sid"; c_min = 0; c_max = 0 };
         { Workload.Datagen.c_attr = "vehicle"; c_min = 0; c_max = 11 };
         { Workload.Datagen.c_attr = "eta"; c_min = 2; c_max = 9 };
         { Workload.Datagen.c_attr = "age"; c_min = 0; c_max = 12 };
       ]
       ~size:60);
  let med =
    Mediator.create ~engine ~vdp ~annotation ~sources:[ Source_db.adapter ops_db; Source_db.adapter fleet_db ] ()
  in
  Mediator.connect med ();
  Mediator.enable_source_filtering med;
  Engine.spawn engine (fun () -> Mediator.initialize med);
  Engine.run engine ~until:1.0;
  Printf.printf "initialized; contributor kinds: ops_db=%s fleet_db=%s\n"
    (match Mediator.contributor_kind med "ops_db" with
    | Med.Materialized_contributor -> "materialized"
    | Med.Hybrid_contributor -> "hybrid"
    | Med.Virtual_contributor -> "virtual")
    (match Mediator.contributor_kind med "fleet_db" with
    | Med.Materialized_contributor -> "materialized"
    | Med.Hybrid_contributor -> "hybrid"
    | Med.Virtual_contributor -> "virtual");

  section "Query with a parsed condition";
  let where = Parser.predicate "age >= 8 and depot = 2" in
  Engine.spawn engine (fun () ->
      let answer =
        Mediator.query med ~node:"LateByVehicle"
          ~attrs:(Parser.attrs "sid, vehicle, age")
          ~cond:where ()
      in
      Format.printf "very late at depot 2:@.%a@." Bag.pp answer.Qp.tuples);
  Engine.run engine ~until:(Engine.now engine +. 5.0);

  section "Live updates";
  (* a shipment ages past its eta *)
  let stale =
    Tuple.of_list
      [
        ("sid", Value.Int 9001);
        ("vehicle", Value.Int 3);
        ("eta", Value.Int 2);
        ("age", Value.Int 10);
      ]
  in
  Source_db.commit ops_db
    (Multi_delta.singleton "Shipments"
       (Rel_delta.insert (Rel_delta.empty schema_shipments) stale));
  Engine.run engine ~until:(Engine.now engine +. 5.0);
  Engine.spawn engine (fun () ->
      let answer =
        Mediator.query med ~node:"LateByVehicle" ~attrs:[ "sid"; "vehicle" ] ()
      in
      Printf.printf "late shipments now: %d (includes sid 9001: %b)\n"
        (Bag.cardinal answer.Qp.tuples)
        (List.exists
           (fun t -> Value.equal (Tuple.get t "sid") (Value.Int 9001))
           (Bag.support answer.Qp.tuples)));
  Engine.run engine ~until:(Engine.now engine +. 5.0);

  section "Consistency";
  let report =
    Correctness.Checker.check ~vdp
      ~sources:[ Source_db.adapter ops_db; Source_db.adapter fleet_db ]
      ~events:(Mediator.events med) ()
  in
  Printf.printf "checked %d queries: %s\n"
    report.Correctness.Checker.checked_queries
    (if Correctness.Checker.consistent report then "CONSISTENT" else "BROKEN")

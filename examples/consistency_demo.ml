(* Consistency vs pseudo-consistency: the Figure 2 scenario of
   Remark 3.1, plus a live demonstration that disabling Eager
   Compensation produces exactly the kind of anomaly the formal
   definitions rule out.

   Run with: dune exec examples/consistency_demo.exe *)

open Relalg
open Delta
open Vdp
open Sim
open Sources
open Squirrel
open Correctness
open Workload

let section title = Printf.printf "\n=== %s ===\n%!" title

(* --- Part 1: Figure 2, replayed ---------------------------------------- *)

let schema_r2 = Schema.make [ ("p1", Value.TInt); ("p2", Value.TInt) ]
let r2 p1 p2 = Tuple.of_list [ ("p1", Value.Int p1); ("p2", Value.Int p2) ]

let letter i = String.make 1 (Char.chr (Char.code 'a' + i))

let fig2 () =
  let vdp =
    let b =
      Builder.create
        ~source_of:(function "R" -> Some "db" | _ -> None)
        ~schema_of:(function "R" -> Some schema_r2 | _ -> None)
        ()
    in
    Builder.add_export b ~name:"V" Expr.(project [ "p2" ] (base "R"));
    Builder.build b
  in
  let engine = Engine.create () in
  let src =
    Source_db.create ~engine ~name:"db" ~relations:[ ("R", schema_r2) ]
      ~announce:Source_db.Never ()
  in
  Source_db.load src "R" (Bag.of_tuples schema_r2 [ r2 0 0 ]);
  let states = [ (2.0, 1, 1); (3.0, 2, 0); (4.0, 3, 0); (5.0, 4, 0); (6.0, 5, 0) ] in
  List.fold_left
    (fun prev (time, p1, p2) ->
      Engine.schedule engine ~delay:time (fun () ->
          Source_db.commit src
            (Multi_delta.singleton "R"
               (Rel_delta.insert
                  (Rel_delta.delete (Rel_delta.empty schema_r2) prev)
                  (r2 p1 p2))));
      r2 p1 p2)
    (r2 0 0) states
  |> ignore;
  Engine.run engine;
  (vdp, src)

let () =
  section "Figure 2: the scenario";
  let vdp, src = fig2 () in
  Printf.printf "%-6s %-12s %-10s\n" "time" "state(DB)" "state(V)";
  let v_letters = [ 0; 0; 1; 0; 1; 0 ] in
  List.iteri
    (fun i v ->
      let _, _, state = List.nth (Source_db.history src) (min i 5) in
      let r = List.hd (Bag.support (List.assoc "R" state)) in
      Printf.printf "t%d     {R(%s,%s)}     {S(%s)}\n" (i + 1)
        (letter (match Tuple.get r "p1" with Value.Int n -> n | _ -> 0))
        (letter (match Tuple.get r "p2" with Value.Int n -> n | _ -> 0))
        (letter v))
    v_letters;
  let observations =
    List.mapi
      (fun i v ->
        {
          Checker.o_time = float_of_int (i + 1);
          o_export = "V";
          o_state =
            Bag.of_tuples
              (Schema.make [ ("p2", Value.TInt) ])
              [ Tuple.of_list [ ("p2", Value.Int v) ] ];
        })
      v_letters
  in
  Printf.printf "\npseudo-consistent (per-pair vectors exist):   %b\n"
    (Checker.pseudo_consistent ~vdp ~sources:[ Source_db.adapter src ] observations);
  Printf.printf "consistent (a single monotone reflect exists): %b\n"
    (Checker.consistent_assignment ~vdp ~sources:[ Source_db.adapter src ] observations <> None);
  print_endline
    "=> pseudo-consistency does not imply consistency (Remark 3.1).";

  (* And a view that honestly tracks the source IS consistent: *)
  let honest =
    List.mapi
      (fun i v ->
        {
          Checker.o_time = float_of_int (i + 1);
          o_export = "V";
          o_state =
            Bag.of_tuples
              (Schema.make [ ("p2", Value.TInt) ])
              [ Tuple.of_list [ ("p2", Value.Int v) ] ];
        })
      [ 0; 0; 1; 0; 0; 0 ]
  in
  (match Checker.consistent_assignment ~vdp ~sources:[ Source_db.adapter src ] honest with
  | Some witness ->
    Printf.printf "\nan honest view admits the monotone reflect: %s\n"
      (String.concat " "
         (List.map
            (fun (t, v) ->
              Printf.sprintf "t=%.0f->v%d" t (List.assoc "db" v))
            witness))
  | None -> print_endline "unexpected: honest view not consistent");

  (* --- Part 2: a live Squirrel run is consistent; ECA off is not ------- *)
  section "A live Squirrel run satisfies the definitions";
  let run ~eca =
    let env = Scenario.make_fig1 ~seed:21 () in
    let config = Med.Config.make ~eca_enabled:eca () in
    let med =
      Scenario.mediator env ~annotation:(Scenario.ann_ex22 env.Scenario.vdp)
        ~config ()
    in
    Engine.spawn env.Scenario.engine (fun () -> Mediator.initialize med);
    Engine.run env.Scenario.engine ~until:1.0;
    (* simultaneous R and S inserts that join: the ECA stress case *)
    let db1 = Scenario.source env "db1" in
    let db2 = Scenario.source env "db2" in
    Adapter.commit db1
      (Driver.single_insert db1 "R"
         (Tuple.of_list
            [
              ("r1", Value.Int 900);
              ("r2", Value.Int 901);
              ("r3", Value.Int 1);
              ("r4", Value.Int 100);
            ]));
    Adapter.commit db2
      (Driver.single_insert db2 "S"
         (Tuple.of_list
            [ ("s1", Value.Int 901); ("s2", Value.Int 2); ("s3", Value.Int 3) ]));
    Scenario.run_to_quiescence env med;
    Engine.spawn env.Scenario.engine (fun () ->
        ignore (Mediator.query med ~node:"T" ()));
    Engine.run env.Scenario.engine
      ~until:(Engine.now env.Scenario.engine +. 5.0);
    Checker.check ~vdp:env.Scenario.vdp ~sources:env.Scenario.sources
      ~events:(Mediator.events med) ()
  in
  let good = run ~eca:true in
  Printf.printf "with Eager Compensation:    %d queries, consistent = %b\n"
    good.Checker.checked_queries (Checker.consistent good);
  let bad = run ~eca:false in
  Printf.printf "without Eager Compensation: %d queries, consistent = %b\n"
    bad.Checker.checked_queries (Checker.consistent bad);
  List.iter
    (fun v -> Printf.printf "  violation: %s\n" v.Checker.v_detail)
    (List.filteri (fun i _ -> i < 1) bad.Checker.violations)

(* The intro's trade-off, live: "the virtual approach may be better if
   the information sources are changing frequently, whereas the
   materialized approach may be better if the information sources
   change infrequently and very fast query response time is needed."

   We run the same Figure 1 view three ways — fully materialized
   (Example 2.1), ZGHW95-style warehouse (export materialized, aux
   virtual), and fully virtual (query shipping) — under a query-heavy
   and an update-heavy load, and report where the work went.

   Run with: dune exec examples/warehouse_vs_virtual.exe *)

open Sim
open Squirrel
open Baselines
open Workload

type outcome = {
  o_name : string;
  o_polls : int;
  o_tuples_polled : int;
  o_atoms : int;
  o_ops_query : int;
  o_ops_update : int;
  o_bytes : int;
}

let run_squirrel name annotation_of ~updates ~queries =
  let env = Scenario.make_fig1 ~seed:33 () in
  let med =
    Scenario.mediator env ~annotation:(annotation_of env.Scenario.vdp) ()
  in
  Engine.spawn env.Scenario.engine (fun () -> Mediator.initialize med);
  Engine.run env.Scenario.engine ~until:1.0;
  let rng = Datagen.state 5 in
  if updates > 0 then
    Driver.update_process ~rng ~src:(Scenario.source env "db1")
      {
        Driver.u_relation = "R";
        u_interval = 0.3;
        u_count = updates;
        u_delete_fraction = 0.25;
        u_specs = Scenario.fig1_update_specs "R";
      };
  let _records =
    Driver.query_process ~rng ~med
      {
        Driver.q_node = "T";
        q_interval = 0.4;
        q_count = queries;
        q_attr_sets = [ ([ "r1"; "s1" ], Relalg.Predicate.True) ];
      }
  in
  Scenario.run_to_quiescence env med;
  let s = Mediator.stats med in
  {
    o_name = name;
    o_polls = Obs.Metrics.value s.Med.polls;
    o_tuples_polled = Obs.Metrics.value s.Med.polled_tuples;
    o_atoms = Obs.Metrics.value s.Med.propagated_atoms;
    o_ops_query = Obs.Metrics.value s.Med.ops_query;
    o_ops_update = Obs.Metrics.value s.Med.ops_update;
    o_bytes = Mediator.store_bytes med;
  }

let run_shipper ~updates ~queries =
  let env = Scenario.make_fig1 ~seed:33 () in
  let shipper =
    Query_shipper.create ~engine:env.Scenario.engine ~vdp:env.Scenario.vdp
      ~sources:env.Scenario.sources ()
  in
  Query_shipper.connect shipper ();
  let rng = Datagen.state 5 in
  if updates > 0 then begin
    let src = Scenario.source env "db1" in
    Driver.update_process ~rng ~src
      {
        Driver.u_relation = "R";
        u_interval = 0.3;
        u_count = updates;
        u_delete_fraction = 0.25;
        u_specs = Scenario.fig1_update_specs "R";
      }
  end;
  Engine.spawn env.Scenario.engine (fun () ->
      for _ = 1 to queries do
        Engine.sleep env.Scenario.engine 0.4;
        ignore (Query_shipper.query shipper ~node:"T" ~attrs:[ "r1"; "s1" ] ())
      done);
  Engine.run env.Scenario.engine
    ~until:(Engine.now env.Scenario.engine +. (0.5 *. float_of_int (updates + queries)) +. 10.0);
  let s = Query_shipper.stats shipper in
  {
    o_name = "virtual (query shipping)";
    o_polls = s.Query_shipper.sq_polls;
    o_tuples_polled = s.Query_shipper.sq_tuples_fetched;
    o_atoms = 0;
    o_ops_query = s.Query_shipper.sq_ops;
    o_ops_update = 0;
    o_bytes = 0;
  }

let print_table title outcomes =
  Printf.printf "\n=== %s ===\n" title;
  Printf.printf "%-28s %8s %10s %8s %10s %10s %8s\n" "approach" "polls"
    "tuples" "atoms" "ops(qry)" "ops(upd)" "bytes";
  List.iter
    (fun o ->
      Printf.printf "%-28s %8d %10d %8d %10d %10d %8d\n" o.o_name o.o_polls
        o.o_tuples_polled o.o_atoms o.o_ops_query o.o_ops_update o.o_bytes)
    outcomes

let () =
  let scenario ~updates ~queries =
    [
      run_squirrel "materialized (Example 2.1)" Annotations.materialize_all
        ~updates ~queries;
      run_squirrel "warehouse (ZGHW95)" Annotations.warehouse ~updates ~queries;
      run_shipper ~updates ~queries;
    ]
  in
  print_table "query-heavy, low churn (30 queries, 3 updates)"
    (scenario ~updates:3 ~queries:30);
  print_table "update-heavy, few queries (30 updates, 3 queries)"
    (scenario ~updates:30 ~queries:3);
  print_endline
    "\nReading: materialization spends work on update atoms and bytes but \
     answers queries locally;\nthe virtual approach polls per query; the \
     warehouse sits in between — matching the intro's claim."

(* Hybrid views: Examples 2.2 and 2.3 on the Figure 1 VDP.

   Part 1 (Example 2.2) keeps the auxiliary copy R' virtual because R
   updates frequently: the frequent path (ΔR) propagates with no
   polling; the rare path (ΔS) polls R — with Eager Compensation so
   the answer matches the reflected state.

   Part 2 (Example 2.3) additionally keeps T's attributes r3 and s2
   virtual: queries over (r1,s1) are pure local reads; a query over r3
   is answered by the key-based construction — joining the
   materialized π_{r1,s1}T with π_{r1,r3}R' through the key r1,
   polling only db1.

   Run with: dune exec examples/hybrid_views.exe *)

open Relalg
open Sim
open Sources
open Squirrel
open Workload

let section title = Printf.printf "\n=== %s ===\n%!" title

let run_in env f =
  Engine.spawn env.Scenario.engine f;
  Engine.run env.Scenario.engine ~until:(Engine.now env.Scenario.engine +. 5.0)

let () =
  section "Example 2.2: virtual auxiliary data";
  let env = Scenario.make_fig1 ~seed:2 () in
  let med =
    Scenario.mediator env ~annotation:(Scenario.ann_ex22 env.Scenario.vdp) ()
  in
  Printf.printf "annotation:\n%s\n"
    (Vdp.Annotation.to_string (Mediator.annotation med));
  run_in env (fun () -> Mediator.initialize med);
  let db1 = Scenario.source env "db1" in
  let db2 = Scenario.source env "db2" in
  let polls_db1_before = Adapter.polls_served db1 in

  (* frequent R updates *)
  let rng = Datagen.state 11 in
  Driver.update_process ~rng ~src:db1
    {
      Driver.u_relation = "R";
      u_interval = 0.2;
      u_count = 25;
      u_delete_fraction = 0.2;
      u_specs = Scenario.fig1_update_specs "R";
    };
  Scenario.run_to_quiescence env med;
  Printf.printf
    "25 R updates processed; extra polls of db1: %d (rule #1 needs only ΔR' \
     and the materialized S')\n"
    (Adapter.polls_served db1 - polls_db1_before);

  (* one rare S update *)
  let s_tuple =
    Tuple.of_list
      [ ("s1", Value.Int 555); ("s2", Value.Int 1); ("s3", Value.Int 2) ]
  in
  Adapter.commit db2 (Driver.single_insert db2 "S" s_tuple);
  Scenario.run_to_quiescence env med;
  Printf.printf
    "1 S update processed; polls of db1 now: %d (rule #2 reads the virtual \
     R', compensated by ECA)\n"
    (Adapter.polls_served db1 - polls_db1_before);

  section "Example 2.3: hybrid export relation";
  let env = Scenario.make_fig1 ~seed:3 () in
  let med =
    Scenario.mediator env ~annotation:(Scenario.ann_ex23 env.Scenario.vdp) ()
  in
  Printf.printf "annotation:\n%s\n"
    (Vdp.Annotation.to_string (Mediator.annotation med));
  run_in env (fun () -> Mediator.initialize med);
  let db1 = Scenario.source env "db1" in
  let db2 = Scenario.source env "db2" in
  let p1 = Adapter.polls_served db1 and p2 = Adapter.polls_served db2 in

  run_in env (fun () ->
      let fast = Mediator.query med ~node:"T" ~attrs:[ "r1"; "s1" ] () in
      Printf.printf
        "π(r1,s1) T: %d tuples — answered from the store (polls: db1 +%d, db2 \
         +%d)\n"
        (Bag.cardinal fast.Qp.tuples)
        (Adapter.polls_served db1 - p1)
        (Adapter.polls_served db2 - p2));

  run_in env (fun () ->
      let cond = Predicate.(lt (attr "r3") (int 100)) in
      let slow = Mediator.query med ~node:"T" ~attrs:[ "r3"; "s1" ] ~cond () in
      Printf.printf
        "π(r3,s1) σ(r3<100) T: %d tuples — key-based construction through r1 \
         (polls: db1 +%d, db2 +%d; key-based uses: %d)\n"
        (Bag.cardinal slow.Qp.tuples)
        (Adapter.polls_served db1 - p1)
        (Adapter.polls_served db2 - p2)
        (Obs.Metrics.value (Mediator.stats med).Med.key_based_constructions));

  section "Consistency";
  let report =
    Correctness.Checker.check ~vdp:env.Scenario.vdp
      ~sources:env.Scenario.sources ~events:(Mediator.events med) ()
  in
  Printf.printf "checked %d queries: %s\n"
    report.Correctness.Checker.checked_queries
    (if Correctness.Checker.consistent report then "CONSISTENT" else "BROKEN")

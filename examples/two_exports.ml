(* Example 5.1 / Figure 4: a mediator with two export relations,

     E = π_{a1,a2,b1}( A ⋈_{a1²+a2<b2²} B )
     G = π_{a1,b1} E − F        where F = π_{a1,b1}( C ⋈_{c1=d1} D )

   The non-equi join makes E expensive to evaluate, so E is kept
   hybrid ([a1^m, a2^v, b1^m]); F is cheap (an equi join of local
   materialized copies), so it stays virtual; B' is virtual because B
   churns. This example also shows the Sec. 5.3 advisor reproducing
   that annotation from workload statistics, and the set-difference
   node G being maintained incrementally.

   Run with: dune exec examples/two_exports.exe *)

open Relalg
open Vdp
open Sim
open Squirrel
open Workload

let section title = Printf.printf "\n=== %s ===\n%!" title

let run_in env f =
  Engine.spawn env.Scenario.engine f;
  Engine.run env.Scenario.engine ~until:(Engine.now env.Scenario.engine +. 5.0)

let () =
  section "The VDP (Figure 4)";
  let env = Scenario.make_ex51 ~seed:4 () in
  Format.printf "%a@." Graph.pp env.Scenario.vdp;

  section "The advisor derives the paper's annotation from statistics";
  let profile =
    {
      (Cost.uniform_profile ()) with
      Cost.update_rate = (function "B" -> 50.0 | _ -> 1.0);
      Cost.attr_access =
        (fun node attr ->
          match (node, attr) with "E", "a2" -> 0.01 | _ -> 0.9);
    }
  in
  let advised, reasons = Advisor.advise env.Scenario.vdp profile in
  List.iter (fun r -> Printf.printf "  - %s\n" r) reasons;
  Printf.printf "advised annotation:\n%s\n" (Annotation.to_string advised);
  Printf.printf "matches the paper's suggestion: %b\n"
    (Annotation.equal advised (Scenario.ann_ex51 env.Scenario.vdp));

  section "Deploy and run";
  let med = Scenario.mediator env ~annotation:advised () in
  run_in env (fun () -> Mediator.initialize med);
  run_in env (fun () ->
      let e = Mediator.query med ~node:"E" ~attrs:[ "a1"; "b1" ] () in
      let g = Mediator.query med ~node:"G" () in
      Printf.printf "|π(a1,b1) E| = %d   |G| = %d\n"
        (Bag.cardinal e.Qp.tuples)
        (Bag.cardinal g.Qp.tuples));

  section "Churn on all four sources";
  let rng = Datagen.state 12 in
  List.iter
    (fun (src_name, rel, interval) ->
      Driver.update_process ~rng ~src:(Scenario.source env src_name)
        {
          Driver.u_relation = rel;
          u_interval = interval;
          u_count = 10;
          u_delete_fraction = 0.3;
          u_specs = Scenario.ex51_update_specs rel;
        })
    [ ("dbA", "A", 0.9); ("dbB", "B", 0.15); ("dbC", "C", 0.8); ("dbD", "D", 0.8) ];
  Scenario.run_to_quiescence env med;
  let stats = Mediator.stats med in
  Printf.printf
    "update txs: %d, atoms propagated: %d, temps built: %d, polls: %d\n"
    (Obs.Metrics.value stats.Med.update_txs)
    (Obs.Metrics.value stats.Med.propagated_atoms)
    (Obs.Metrics.value stats.Med.temps_built)
    (Obs.Metrics.value stats.Med.polls);

  section "Query the maintained exports (and the virtual a2)";
  run_in env (fun () ->
      let g = Mediator.query med ~node:"G" () in
      Printf.printf "|G| = %d after churn\n" (Bag.cardinal g.Qp.tuples));
  run_in env (fun () ->
      let e_full = Mediator.query med ~node:"E" () in
      Printf.printf "|E| = %d (a2 fetched through the materialized key a1)\n"
        (Bag.cardinal e_full.Qp.tuples));

  section "Consistency";
  let report =
    Correctness.Checker.check ~vdp:env.Scenario.vdp
      ~sources:env.Scenario.sources ~events:(Mediator.events med) ()
  in
  Printf.printf "checked %d queries: %s\n"
    report.Correctness.Checker.checked_queries
    (if Correctness.Checker.consistent report then "CONSISTENT" else "BROKEN")

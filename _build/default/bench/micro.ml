(* E10 — Bechamel micro-benchmarks of the Heraclitus delta operators
   (Sec. 6.2) and the kernel building blocks: apply, smash, inverse,
   select/project filtering, and the signed join behind the SPJ rules. *)

open Bechamel
open Toolkit
open Relalg
open Delta

let schema =
  Schema.make ~key:[ "k" ]
    [ ("k", Value.TInt); ("x", Value.TInt); ("y", Value.TInt) ]

let tuple i =
  Tuple.of_list
    [ ("k", Value.Int i); ("x", Value.Int (i mod 17)); ("y", Value.Int (i mod 5)) ]

let bag n =
  let rec go acc i = if i >= n then acc else go (Bag.add acc (tuple i)) (i + 1) in
  go (Bag.empty schema) 0

let delta_of n offset =
  let rec go acc i =
    if i >= n then acc
    else
      let acc =
        if i mod 2 = 0 then Rel_delta.insert acc (tuple (offset + i))
        else Rel_delta.delete acc (tuple i)
      in
      go acc (i + 1)
  in
  go (Rel_delta.empty schema) 0

let sizes = [ 10; 100; 1000 ]

let tests () =
  let per_size name f =
    List.map
      (fun n -> Test.make ~name:(Printf.sprintf "%s/%d" name n) (f n))
      sizes
  in
  List.concat
    [
      per_size "apply" (fun n ->
          let b = bag n and d = delta_of (n / 2) n in
          Staged.stage (fun () -> ignore (Rel_delta.apply b d)));
      per_size "smash" (fun n ->
          let d1 = delta_of n n and d2 = delta_of n (2 * n) in
          Staged.stage (fun () -> ignore (Rel_delta.smash d1 d2)));
      per_size "inverse" (fun n ->
          let d = delta_of n n in
          Staged.stage (fun () -> ignore (Rel_delta.inverse d)));
      per_size "filter(select+project)" (fun n ->
          let d = delta_of n n in
          let p = Predicate.(lt (attr "x") (int 9)) in
          Staged.stage (fun () ->
              ignore (Rel_delta.project [ "k"; "x" ] (Rel_delta.select p d))));
      per_size "join_bag" (fun n ->
          let d = delta_of (n / 4) n and b = bag n in
          Staged.stage (fun () ->
              ignore (Rel_delta.join_bag ~on:(Predicate.eq_attrs "y" "y") d b)));
    ]

let run () =
  Tables.section "E10  Heraclitus delta operator micro-benchmarks (Bechamel)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.25) ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"delta" ~fmt:"%s %s" (tests ()))
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some (est :: _) -> rows := (name, est) :: !rows
      | Some [] | None -> ())
    results;
  let rows =
    List.sort (fun (a, _) (b, _) -> String.compare a b) !rows
    |> List.map (fun (name, ns) ->
           [ Tables.S name; Tables.F ns; Tables.F (ns /. 1000.0) ])
  in
  Tables.print ~title:"per-call cost (monotonic clock, OLS on runs)"
    ~header:[ "operation"; "ns/run"; "us/run" ]
    rows;
  Tables.note
    "Shape: apply/smash/inverse are linear in delta size; the signed join \
     tracks its\ninput+output, matching the Sec. 6.2 expectations that deltas \
     stay proportional to\nchange volume, not database volume.\n"

bench/main.mli:

bench/micro.ml: Analyze Bag Bechamel Benchmark Delta Hashtbl Instance List Measure Predicate Printf Rel_delta Relalg Schema Staged String Tables Test Time Toolkit Tuple Value

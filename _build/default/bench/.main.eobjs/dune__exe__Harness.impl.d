bench/harness.ml: Baselines Checker Correctness Datagen Driver Engine Eval Graph List Med Mediator Predicate Relalg Scenario Sim Source_db Sources Squirrel Vdp Workload

(* Minimal fixed-width table rendering for experiment output. *)

type cell = S of string | I of int | F of float | B of bool

let cell_to_string = function
  | S s -> s
  | I i -> string_of_int i
  | F f ->
    if Float.abs f >= 1000.0 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.3f" f
  | B b -> if b then "yes" else "no"

let print ~title ~header rows =
  Printf.printf "\n-- %s --\n" title;
  let rows = List.map (List.map cell_to_string) rows in
  let widths =
    List.fold_left
      (fun acc row ->
        List.mapi
          (fun i cell ->
            let cur = try List.nth acc i with _ -> 0 in
            max cur (String.length cell))
          row)
      (List.map String.length header)
      rows
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let print_row cells =
    print_string "  ";
    List.iteri
      (fun i c -> Printf.printf "%s  " (pad c (List.nth widths i)))
      cells;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let note fmt = Printf.printf fmt

let section title =
  Printf.printf "\n======================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "======================================================\n%!"

lib/core/mediator.mli: Annotation Bag Delta Engine Graph Med Multi_delta Predicate Relalg Sim Source_db Sources Vdp

lib/core/iup.mli: Med

lib/core/mediator.ml: Annotation Bag Engine Eval Expr Format Graph Hashtbl Iup List Med Message Predicate Qp Relalg Rules Schema Sim Source_db Sources Storage Store String Table Vdp

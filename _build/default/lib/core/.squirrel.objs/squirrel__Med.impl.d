lib/core/med.ml: Annotation Bag Delta Engine Format Graph Hashtbl List Logs Message Multi_delta Option Predicate Rel_delta Relalg Schema Sim Source_db Sources Storage Store String Table Vdp

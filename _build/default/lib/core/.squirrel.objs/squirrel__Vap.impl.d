lib/core/vap.ml: Bag Delta Derived_from Eval Expr Graph Hashtbl List Med Message Option Predicate Rel_delta Relalg Source_db Sources String Vdp

lib/core/med.mli: Annotation Bag Delta Engine Format Graph Hashtbl Logs Message Multi_delta Predicate Rel_delta Relalg Sim Source_db Sources Storage Store Vdp

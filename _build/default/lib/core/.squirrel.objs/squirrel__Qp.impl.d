lib/core/qp.ml: Bag Derived_from Engine Eval Expr Graph List Med Option Predicate Relalg Schema Sim Storage String Table Vap Vdp

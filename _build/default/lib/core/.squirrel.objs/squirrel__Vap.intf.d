lib/core/vap.mli: Bag Med Predicate Relalg

lib/core/qp.mli: Bag Med Predicate Relalg

lib/core/iup.ml: Delta Derived_from Engine Eval Expr Graph Hashtbl Inc_eval List Med Multi_delta Predicate Rel_delta Relalg Schema Sim Storage String Table Vap Vdp

(** Functional dependencies and key reasoning.

    Example 2.3's key-based construction of temporary relations rests
    on FD inference: from [R' : r1 -> r3] (r1 is the key of R') and
    [π(r1,r3) T ⊆ π(r1,r3) R'] the mediator infers [T : r1 -> r3] and
    can fetch the virtual attribute r3 through the materialized key.
    This module provides the FD machinery: closure, implication, and
    conservative propagation of FDs through algebra expressions. *)

type fd = { lhs : string list; rhs : string list }

type t
(** A set of functional dependencies over an attribute universe. *)

val make : fd list -> t
val fds : t -> fd list
val add : t -> fd -> t
val of_key : Schema.t -> t
(** The FDs declared by a schema's primary key: key -> all attributes. *)

val closure : t -> string list -> string list
(** Attribute-set closure X+ under the FDs, sorted. *)

val implies : t -> fd -> bool
(** [implies fds f] is true when f follows from [fds] (via closure). *)

val determines : t -> string list -> string -> bool
(** [determines fds xs a]: does [xs -> a] hold? *)

val is_key_for : t -> string list -> string list -> bool
(** [is_key_for fds candidate attrs]: does [candidate] determine every
    attribute in [attrs]? *)

val union : t -> t -> t

val project : t -> string list -> t
(** FDs entailed on a subset of attributes (computed via closures of
    subsets of the projection — exponential in principle, bounded here
    by only considering LHSs of existing FDs restricted to the
    projection; conservative: may miss derivable FDs, never invents). *)

val derive : (string -> t) -> Expr.t -> t
(** Conservative FD propagation through an expression, given FDs of
    each base relation. Select preserves FDs; project restricts them;
    join takes the union (plus equality-induced FDs from equi-join
    pairs); union of bags yields no FDs; difference keeps the left
    side's FDs. *)

val pp : Format.formatter -> t -> unit

lib/relalg/eval.mli: Bag Expr

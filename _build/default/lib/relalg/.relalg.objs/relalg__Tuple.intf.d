lib/relalg/tuple.mli: Format Map Schema Set Value

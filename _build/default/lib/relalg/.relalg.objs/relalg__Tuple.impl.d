lib/relalg/tuple.ml: Format Hashtbl List Map Schema Set String Value

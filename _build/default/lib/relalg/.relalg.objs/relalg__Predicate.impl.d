lib/relalg/predicate.ml: Format List Set Stdlib String Tuple Value

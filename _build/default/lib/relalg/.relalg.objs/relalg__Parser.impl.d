lib/relalg/parser.ml: Buffer Expr Format List Predicate Printf String Value

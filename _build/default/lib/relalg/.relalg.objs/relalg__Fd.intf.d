lib/relalg/fd.mli: Expr Format Schema

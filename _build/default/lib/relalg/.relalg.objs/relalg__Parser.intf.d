lib/relalg/parser.mli: Expr Predicate

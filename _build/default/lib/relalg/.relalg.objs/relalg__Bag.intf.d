lib/relalg/bag.mli: Format Predicate Schema Tuple Value

lib/relalg/predicate.mli: Format Tuple Value

lib/relalg/eval.ml: Bag Expr List Predicate Schema Tuple

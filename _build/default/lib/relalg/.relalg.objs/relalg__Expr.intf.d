lib/relalg/expr.mli: Format Predicate Schema

lib/relalg/fd.ml: Expr Format List Predicate Schema Set String

lib/relalg/expr.ml: Format Hashtbl List Predicate Schema Stdlib String

lib/relalg/schema.ml: Format List Stdlib String Value

lib/relalg/bag.ml: Format Hashtbl Int List Predicate Schema String Tuple Value

(** Concrete syntax for algebra expressions and selection conditions.

    A small textual form of the view-definition language, used by the
    CLI and handy in tests:

    {v
    project r1, r3, s1, s2 (
      select r4 = 100 and r3 < 200 (R)
      join on r2 = s1
      select s3 < 50 (S)
    )
    v}

    Grammar (informally):
    {v
    expr     ::= joinexpr (("union" | "minus") joinexpr)*
    joinexpr ::= primary ("join" ["on" pred] primary)*
    primary  ::= IDENT
               | "(" expr ")"
               | "select" pred "(" expr ")"
               | "project" IDENT ("," IDENT)* "(" expr ")"
    pred     ::= conj ("or" conj)*
    conj     ::= unit ("and" unit)*
    unit     ::= "not" unit | "true" | "false"
               | term ("=" | "<>" | "<" | "<=" | ">" | ">=") term
               | "(" pred ")"
    term     ::= factor (("+" | "-") factor)*
    factor   ::= atom (("*" | "/") atom)*
    atom     ::= INT | FLOAT | 'STRING' | IDENT | "-" atom | "(" term ")"
    v}

    Keywords are case-insensitive; identifiers are
    [[A-Za-z_][A-Za-z0-9_']*] (primes allowed, so VDP node names like
    [R'] parse). *)

exception Parse_error of string
(** Carries a message with the offending position. *)

val expr : string -> Expr.t
(** Parse a full algebra expression. @raise Parse_error. *)

val predicate : string -> Predicate.t
(** Parse a selection condition. @raise Parse_error. *)

val attrs : string -> string list
(** Parse a comma-separated attribute list. @raise Parse_error. *)

(** Tuples: finite maps from attribute names to values.

    Attribute-based (rather than positional) tuples match the paper's
    attribute-based relational algebra: projection, natural join and
    delta filtering all operate by attribute name. *)

type t

val empty : t

val of_list : (string * Value.t) list -> t
(** Later bindings override earlier ones. *)

val to_list : t -> (string * Value.t) list
(** Bindings in attribute-name order. *)

val get : t -> string -> Value.t
(** @raise Not_found if the attribute is absent. *)

val find_opt : t -> string -> Value.t option
val mem : t -> string -> bool
val set : t -> string -> Value.t -> t
val attrs : t -> string list
val arity : t -> int

val project : t -> string list -> t
(** Keep only the named attributes. @raise Not_found if one is absent. *)

val agree_on : t -> t -> string list -> bool
(** [agree_on a b names] is true when [a] and [b] carry equal values for
    every attribute in [names]. @raise Not_found if absent on either side. *)

val concat : t -> t -> t option
(** Merge of two tuples, as used by natural join: [None] when the tuples
    disagree on a shared attribute, otherwise the union of bindings. *)

val matches_schema : t -> Schema.t -> bool
(** True when the tuple binds exactly the schema's attributes, with
    values of the declared types ([Null] matches any type). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t

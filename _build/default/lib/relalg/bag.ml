type t = { schema : Schema.t; tuples : int Tuple.Map.t }

exception Bag_error of string

let err fmt = Format.kasprintf (fun s -> raise (Bag_error s)) fmt

let empty schema = { schema; tuples = Tuple.Map.empty }
let schema b = b.schema

let check_tuple schema tuple =
  if not (Tuple.matches_schema tuple schema) then
    err "tuple %s does not match schema %s" (Tuple.to_string tuple)
      (Schema.to_string schema)

let add ?(mult = 1) b tuple =
  if mult <= 0 then err "add: multiplicity %d must be positive" mult;
  check_tuple b.schema tuple;
  let tuples =
    Tuple.Map.update tuple
      (function None -> Some mult | Some m -> Some (m + mult))
      b.tuples
  in
  { b with tuples }

let remove ?(mult = 1) b tuple =
  if mult <= 0 then err "remove: multiplicity %d must be positive" mult;
  let tuples =
    Tuple.Map.update tuple
      (function
        | None -> None
        | Some m -> if m > mult then Some (m - mult) else None)
      b.tuples
  in
  { b with tuples }

let of_tuples schema tuples =
  List.fold_left (fun b t -> add b t) (empty schema) tuples

let of_rows schema rows =
  let names = Schema.attrs schema in
  let to_tuple row =
    match List.combine names row with
    | pairs -> Tuple.of_list pairs
    | exception Invalid_argument _ ->
      err "of_rows: row arity %d does not match schema arity %d"
        (List.length row) (List.length names)
  in
  of_tuples schema (List.map to_tuple rows)

let mult b tuple =
  match Tuple.Map.find_opt tuple b.tuples with Some m -> m | None -> 0

let mem b tuple = mult b tuple > 0
let cardinal b = Tuple.Map.fold (fun _ m acc -> acc + m) b.tuples 0
let support_cardinal b = Tuple.Map.cardinal b.tuples
let is_empty b = Tuple.Map.is_empty b.tuples
let fold f b init = Tuple.Map.fold f b.tuples init
let iter f b = Tuple.Map.iter f b.tuples
let to_list b = Tuple.Map.bindings b.tuples
let support b = List.map fst (Tuple.Map.bindings b.tuples)

let filter pred b =
  { b with tuples = Tuple.Map.filter (fun t _ -> pred t) b.tuples }

let select p b = filter (Predicate.eval p) b

let map_tuples schema f b =
  Tuple.Map.fold
    (fun tuple m acc -> add ~mult:m acc (f tuple))
    b.tuples (empty schema)

let project names b =
  let schema = Schema.project b.schema names in
  map_tuples schema (fun t -> Tuple.project t names) b

let require_compatible op a b =
  if not (Schema.union_compatible a.schema b.schema) then
    err "%s: schemas %s and %s are not union-compatible" op
      (Schema.to_string a.schema)
      (Schema.to_string b.schema)

let union a b =
  require_compatible "union" a b;
  let tuples =
    Tuple.Map.union (fun _ m1 m2 -> Some (m1 + m2)) a.tuples b.tuples
  in
  { a with tuples }

let monus a b =
  require_compatible "monus" a b;
  let tuples =
    Tuple.Map.fold
      (fun tuple m acc ->
        Tuple.Map.update tuple
          (function
            | None -> None
            | Some m' -> if m' > m then Some (m' - m) else None)
          acc)
      b.tuples a.tuples
  in
  { a with tuples }

let to_set b = { b with tuples = Tuple.Map.map (fun _ -> 1) b.tuples }
let is_set b = Tuple.Map.for_all (fun _ m -> m = 1) b.tuples

let set_diff a b =
  require_compatible "set_diff" a b;
  let tuples =
    Tuple.Map.filter (fun t _ -> not (Tuple.Map.mem t b.tuples)) a.tuples
  in
  to_set { a with tuples }

let inter_set a b =
  require_compatible "inter_set" a b;
  let tuples = Tuple.Map.filter (fun t _ -> Tuple.Map.mem t b.tuples) a.tuples in
  to_set { a with tuples }

(* Hash table keyed by join-key value lists, using Value's own
   equality/hash so that e.g. Int 1 and Float 1. collide as they
   compare equal. *)
module Key_table = Hashtbl.Make (struct
  type t = Value.t list

  let equal = List.equal Value.equal
  let hash key = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 key
end)

(* Hash join: key extractor returns the list of values for the equi
   attributes of each side; tuples with equal keys are then checked
   against the residual predicate. *)
let join ?(on = Predicate.True) a b =
  let shared =
    List.filter (fun n -> Schema.mem b.schema n) (Schema.attrs a.schema)
  in
  let extra_pairs =
    List.filter_map
      (fun (x, y) ->
        if Schema.mem a.schema x && Schema.mem b.schema y then Some (x, y)
        else if Schema.mem a.schema y && Schema.mem b.schema x then Some (y, x)
        else None)
      (Predicate.equi_pairs on)
  in
  let left_keys = shared @ List.map fst extra_pairs in
  let right_keys = shared @ List.map snd extra_pairs in
  let out_schema = Schema.join a.schema b.schema in
  let result = ref (empty out_schema) in
  let combine ta ma tb mb =
    match Tuple.concat ta tb with
    | None -> ()
    | Some merged ->
      if Predicate.eval on merged then
        result := add ~mult:(ma * mb) !result merged
  in
  if left_keys = [] then
    (* pure theta join: nested loops *)
    iter (fun ta ma -> iter (fun tb mb -> combine ta ma tb mb) b) a
  else begin
    let index = Key_table.create (max 16 (support_cardinal b)) in
    iter
      (fun tb mb ->
        let key = List.map (Tuple.get tb) right_keys in
        Key_table.add index key (tb, mb))
      b;
    iter
      (fun ta ma ->
        let key = List.map (Tuple.get ta) left_keys in
        List.iter
          (fun (tb, mb) -> combine ta ma tb mb)
          (Key_table.find_all index key))
      a
  end;
  !result

let product a b =
  let overlap =
    List.filter (fun n -> Schema.mem b.schema n) (Schema.attrs a.schema)
  in
  if overlap <> [] then
    err "product: overlapping attributes %s" (String.concat ", " overlap);
  join a b

let equal a b =
  Schema.union_compatible a.schema b.schema
  && Tuple.Map.equal Int.equal a.tuples b.tuples

let equal_as_sets a b = equal (to_set a) (to_set b)

let pp fmt b =
  Format.fprintf fmt "@[<v>%a:@,%a@]" Schema.pp b.schema
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt (t, m) ->
         if m = 1 then Tuple.pp fmt t
         else Format.fprintf fmt "%a x%d" Tuple.pp t m))
    (to_list b)

let to_string b = Format.asprintf "%a" pp b

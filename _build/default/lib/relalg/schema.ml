type t = { attrs : (string * Value.ty) list; key : string list }

exception Schema_error of string

let err fmt = Format.kasprintf (fun s -> raise (Schema_error s)) fmt

let check_distinct names =
  let sorted = List.sort String.compare names in
  let rec dup = function
    | a :: (b :: _ as rest) -> if String.equal a b then Some a else dup rest
    | _ -> None
  in
  match dup sorted with
  | Some a -> err "duplicate attribute %S" a
  | None -> ()

let make ?(key = []) attrs =
  check_distinct (List.map fst attrs);
  List.iter
    (fun k ->
      if not (List.mem_assoc k attrs) then err "key attribute %S not in schema" k)
    key;
  check_distinct key;
  { attrs; key }

let attrs s = List.map fst s.attrs
let typed_attrs s = s.attrs
let key s = s.key
let has_key s = s.key <> []
let mem s name = List.mem_assoc name s.attrs

let ty_of_attr s name =
  match List.assoc_opt name s.attrs with
  | Some ty -> ty
  | None -> err "unknown attribute %S" name

let arity s = List.length s.attrs

let project s names =
  let attrs =
    List.map
      (fun n ->
        match List.assoc_opt n s.attrs with
        | Some ty -> (n, ty)
        | None -> err "project: unknown attribute %S" n)
      names
  in
  check_distinct names;
  let key = if List.for_all (fun k -> List.mem k names) s.key then s.key else [] in
  { attrs; key }

let join a b =
  let merged =
    a.attrs
    @ List.filter
        (fun (n, ty) ->
          match List.assoc_opt n a.attrs with
          | None -> true
          | Some ty' ->
            if ty = ty' then false
            else err "join: attribute %S has conflicting types" n)
        b.attrs
  in
  let key =
    if a.key <> [] && b.key <> [] then
      a.key @ List.filter (fun k -> not (List.mem k a.key)) b.key
    else []
  in
  { attrs = merged; key }

let union_compatible a b =
  List.length a.attrs = List.length b.attrs
  && List.for_all2
       (fun (n, ty) (n', ty') -> String.equal n n' && ty = ty')
       a.attrs b.attrs

let equal a b =
  union_compatible a b && List.equal String.equal a.key b.key

let compare a b = Stdlib.compare (a.attrs, a.key) (b.attrs, b.key)

let restrict_key s key =
  List.iter
    (fun k -> if not (mem s k) then err "restrict_key: unknown attribute %S" k)
    key;
  { s with key }

let pp fmt s =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt (n, ty) ->
         if List.mem n s.key then Format.fprintf fmt "%s*:%a" n Value.pp_ty ty
         else Format.fprintf fmt "%s:%a" n Value.pp_ty ty))
    s.attrs

let to_string s = Format.asprintf "%a" pp s

(** The Squirrel view-definition language: attribute-based relational
    algebra over named base relations (Sec. 5).

    An expression is used both for whole view definitions (over source
    relation names) and for VDP node definitions [def(v)] (over the
    names of the node's children). *)

type t =
  | Base of string
  | Select of Predicate.t * t
  | Project of string list * t
  | Rename of (string * string) list * t
      (** [(old, new)] pairs; attribute renaming for schema alignment
          across sources. The paper defers renaming "in the interest
          of clarity"; we support it in the place integration needs
          it — select/project/rename chains over a single source
          relation (leaf-parent definitions), where it is absorbed
          below every other operator. *)
  | Join of t * Predicate.t * t  (** natural-on-shared-attrs + theta *)
  | Union of t * t
  | Diff of t * t  (** set difference; a "set node" in VDP terms *)

exception Expr_error of string

(** {1 Constructors} *)

val base : string -> t
val select : Predicate.t -> t -> t
val project : string list -> t -> t
val rename : (string * string) list -> t -> t
val join : ?on:Predicate.t -> t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t

(** {1 Analysis} *)

val base_names : t -> string list
(** Distinct base relation names, in first-occurrence order. A name may
    occur several times in the expression (self-joins). *)

val base_occurrences : t -> string list
(** Base names with duplicates, in left-to-right order. *)

val schema_of : (string -> Schema.t) -> t -> Schema.t
(** Output schema given schemas of base relations.
    @raise Expr_error on arity/compatibility violations (e.g. union of
    incompatible schemas, projection of unknown attributes). *)

val contains_diff : t -> bool
val contains_dup_eliminating : t -> bool

val is_select_project_of : string -> t -> bool
(** True when the expression is (a chain of) select/project/rename
    over a single occurrence of the given base — the only shape
    allowed for leaf-parent nodes (restriction (a) of Def. 5.1). *)

val is_spj : t -> bool
(** True for arbitrary combinations of select/project/join over bases
    (restriction (b)). *)

val is_setop_of_sp : t -> bool
(** True for a top-level union or difference with only select/project
    chains underneath (restriction (c)). *)

val rewrite_bases : (string -> t) -> t -> t
(** Substitute each base occurrence by an expression. *)

val size : t -> int
(** Node count, used by cost heuristics. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Sset = Set.Make (String)

type fd = { lhs : string list; rhs : string list }

type t = fd list

let norm_fd { lhs; rhs } =
  {
    lhs = Sset.elements (Sset.of_list lhs);
    rhs = Sset.elements (Sset.of_list rhs);
  }

let make fds = List.map norm_fd fds
let fds t = t
let add t fd = norm_fd fd :: t

let of_key schema =
  match Schema.key schema with
  | [] -> []
  | key -> [ norm_fd { lhs = key; rhs = Schema.attrs schema } ]

let closure t attrs =
  let rec fixpoint acc =
    let acc' =
      List.fold_left
        (fun acc { lhs; rhs } ->
          if List.for_all (fun a -> Sset.mem a acc) lhs then
            List.fold_left (fun acc a -> Sset.add a acc) acc rhs
          else acc)
        acc t
    in
    if Sset.equal acc acc' then acc else fixpoint acc'
  in
  Sset.elements (fixpoint (Sset.of_list attrs))

let implies t { lhs; rhs } =
  let cl = Sset.of_list (closure t lhs) in
  List.for_all (fun a -> Sset.mem a cl) rhs

let determines t xs a = implies t { lhs = xs; rhs = [ a ] }

let is_key_for t candidate attrs = implies t { lhs = candidate; rhs = attrs }

let union a b = a @ b

let project t names =
  let allowed = Sset.of_list names in
  List.filter_map
    (fun { lhs; rhs = _ } ->
      if List.for_all (fun a -> Sset.mem a allowed) lhs then
        let cl =
          List.filter (fun a -> Sset.mem a allowed) (closure t lhs)
        in
        let rhs = List.filter (fun a -> not (List.mem a lhs)) cl in
        if rhs = [] then None else Some { lhs; rhs }
      else None)
    t

let rec derive env = function
  | Expr.Base n -> env n
  | Expr.Select (_, e) -> derive env e
  | Expr.Project (names, e) -> project (derive env e) names
  | Expr.Rename (mapping, e) ->
    let renamed a =
      match List.assoc_opt a mapping with Some b -> b | None -> a
    in
    List.map
      (fun { lhs; rhs } ->
        { lhs = List.map renamed lhs; rhs = List.map renamed rhs })
      (derive env e)
  | Expr.Join (a, p, b) ->
    let fds = union (derive env a) (derive env b) in
    (* each equi-join pair x = y adds x -> y and y -> x *)
    List.fold_left
      (fun fds (x, y) ->
        add (add fds { lhs = [ x ]; rhs = [ y ] }) { lhs = [ y ]; rhs = [ x ] })
      fds (Predicate.equi_pairs p)
  | Expr.Union _ -> []
  | Expr.Diff (a, _) -> derive env a

let pp fmt t =
  Format.pp_print_list ~pp_sep:Format.pp_print_space
    (fun fmt { lhs; rhs } ->
      Format.fprintf fmt "%s -> %s" (String.concat "," lhs)
        (String.concat "," rhs))
    fmt t

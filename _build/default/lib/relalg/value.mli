(** Atomic values stored in relations.

    The Squirrel view-definition language is relational; tuples carry
    typed atomic values. [Null] is included for completeness (it arises
    when outer data is missing) but the algorithms of the paper never
    produce it; comparisons involving [Null] are three-valued-collapsed
    to [false]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

(** Runtime types of values. *)
type ty = TBool | TInt | TFloat | TStr

val ty_of : t -> ty option
(** [ty_of v] is the type of [v], or [None] for [Null]. *)

val compare : t -> t -> int
(** Total order used for deterministic relation storage. Values of
    distinct types are ordered by type tag; [Int] and [Float] compare
    numerically against each other. *)

val equal : t -> t -> bool

val hash : t -> int

exception Type_error of string
(** Raised by arithmetic on non-numeric operands. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Numeric arithmetic with int/float promotion.
    @raise Type_error on non-numeric operands.
    @raise Division_by_zero for integer division by zero. *)

val neg : t -> t

val lt : t -> t -> bool
val le : t -> t -> bool
(** Comparison following [compare], except any comparison involving
    [Null] is [false]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val ty_to_string : ty -> string
val pp_ty : Format.formatter -> ty -> unit

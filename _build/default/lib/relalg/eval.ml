exception Unbound_relation of string

let ops_counter = ref 0

let tuple_ops () = !ops_counter
let reset_tuple_ops () = ops_counter := 0
let charge_tuple_ops n = ops_counter := !ops_counter + n

let rename_tuple mapping tuple =
  Tuple.of_list
    (List.map
       (fun (a, v) ->
         match List.assoc_opt a mapping with
         | Some b -> (b, v)
         | None -> (a, v))
       (Tuple.to_list tuple))

let rec eval ~env expr =
  match expr with
  | Expr.Base name -> (
    match env name with
    | Some bag -> bag
    | None -> raise (Unbound_relation name))
  | Expr.Select (p, e) ->
    let bag = eval ~env e in
    charge_tuple_ops (Bag.support_cardinal bag);
    Bag.select p bag
  | Expr.Project (names, e) ->
    let bag = eval ~env e in
    charge_tuple_ops (Bag.support_cardinal bag);
    Bag.project names bag
  | Expr.Rename (mapping, e) ->
    let bag = eval ~env e in
    charge_tuple_ops (Bag.support_cardinal bag);
    let schema =
      Expr.schema_of (fun _ -> Bag.schema bag) (Expr.Rename (mapping, Expr.Base "_"))
    in
    Bag.map_tuples schema (rename_tuple mapping) bag
  | Expr.Join (a, p, b) ->
    let ba = eval ~env a and bb = eval ~env b in
    let result = Bag.join ~on:p ba bb in
    (* hash join: linear in inputs plus output; theta-only joins are
       charged quadratically by [Bag.join] going through every pair,
       approximated here by the product bound *)
    let shared =
      List.exists (fun n -> Schema.mem (Bag.schema bb) n)
        (Schema.attrs (Bag.schema ba))
    in
    let cost =
      if shared || Predicate.equi_pairs p <> [] then
        Bag.support_cardinal ba + Bag.support_cardinal bb
        + Bag.support_cardinal result
      else Bag.support_cardinal ba * Bag.support_cardinal bb
    in
    charge_tuple_ops cost;
    result
  | Expr.Union (a, b) ->
    let ba = eval ~env a and bb = eval ~env b in
    charge_tuple_ops (Bag.support_cardinal ba + Bag.support_cardinal bb);
    Bag.union ba bb
  | Expr.Diff (a, b) ->
    let ba = eval ~env a and bb = eval ~env b in
    charge_tuple_ops (Bag.support_cardinal ba + Bag.support_cardinal bb);
    Bag.set_diff ba bb

let eval_assoc bindings expr =
  eval ~env:(fun name -> List.assoc_opt name bindings) expr

type t =
  | Base of string
  | Select of Predicate.t * t
  | Project of string list * t
  | Rename of (string * string) list * t
  | Join of t * Predicate.t * t
  | Union of t * t
  | Diff of t * t

exception Expr_error of string

let err fmt = Format.kasprintf (fun s -> raise (Expr_error s)) fmt

(* each (old, new) pair must rename an existing attribute, sources
   must be distinct, and targets must not collide with kept names *)
let check_rename_mapping schema mapping =
  let olds = List.map fst mapping in
  List.iter
    (fun a ->
      if not (Schema.mem schema a) then
        err "rename: unknown attribute %S" a)
    olds;
  if List.length (List.sort_uniq String.compare olds) <> List.length olds then
    err "rename: duplicate source attribute";
  ()

let base name = Base name
let select p e = Select (p, e)
let project names e = Project (names, e)
let rename mapping e = Rename (mapping, e)
let join ?(on = Predicate.True) a b = Join (a, on, b)
let union a b = Union (a, b)
let diff a b = Diff (a, b)

let rec base_occurrences = function
  | Base n -> [ n ]
  | Select (_, e) | Project (_, e) | Rename (_, e) -> base_occurrences e
  | Join (a, _, b) | Union (a, b) | Diff (a, b) ->
    base_occurrences a @ base_occurrences b

let base_names e =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    (base_occurrences e)

let rec schema_of env = function
  | Base n -> env n
  | Select (p, e) ->
    let s = schema_of env e in
    List.iter
      (fun a ->
        if not (Schema.mem s a) then
          err "select condition mentions unknown attribute %S" a)
      (Predicate.attrs p);
    s
  | Project (names, e) -> Schema.project (schema_of env e) names
  | Rename (mapping, e) ->
    let s = schema_of env e in
    let fresh = List.map snd mapping in
    check_rename_mapping s mapping;
    let renamed a = match List.assoc_opt a mapping with Some b -> b | None -> a in
    let attrs = List.map (fun (a, ty) -> (renamed a, ty)) (Schema.typed_attrs s) in
    (match Schema.make ~key:(List.map renamed (Schema.key s)) attrs with
    | schema -> schema
    | exception Schema.Schema_error msg ->
      err "rename to %s yields an invalid schema: %s"
        (String.concat "," fresh) msg)
  | Join (a, p, b) ->
    let sa = schema_of env a and sb = schema_of env b in
    let joined = Schema.join sa sb in
    List.iter
      (fun attr ->
        if not (Schema.mem joined attr) then
          err "join condition mentions unknown attribute %S" attr)
      (Predicate.attrs p);
    joined
  | Union (a, b) ->
    let sa = schema_of env a and sb = schema_of env b in
    if not (Schema.union_compatible sa sb) then
      err "union of incompatible schemas %s and %s" (Schema.to_string sa)
        (Schema.to_string sb);
    (* a bag union has no key even if the inputs do *)
    Schema.restrict_key sa []
  | Diff (a, b) ->
    let sa = schema_of env a and sb = schema_of env b in
    if not (Schema.union_compatible sa sb) then
      err "difference of incompatible schemas %s and %s" (Schema.to_string sa)
        (Schema.to_string sb);
    sa

let rec contains_diff = function
  | Base _ -> false
  | Select (_, e) | Project (_, e) | Rename (_, e) -> contains_diff e
  | Join (a, _, b) | Union (a, b) -> contains_diff a || contains_diff b
  | Diff _ -> true

let rec contains_dup_eliminating = function
  | Base _ -> false
  | Select (_, e) | Rename (_, e) -> contains_dup_eliminating e
  | Project _ -> true
  | Join (a, _, b) | Union (a, b) ->
    contains_dup_eliminating a || contains_dup_eliminating b
  | Diff _ -> true

let rec is_select_project_of name = function
  | Base n -> String.equal n name
  | Select (_, e) | Project (_, e) | Rename (_, e) ->
    is_select_project_of name e
  | Join _ | Union _ | Diff _ -> false

(* renaming is confined to leaf-parent chains: it does not count as
   an SPJ / select-project operator for the Def. 5.1 restrictions *)
let rec is_spj = function
  | Base _ -> true
  | Select (_, e) | Project (_, e) -> is_spj e
  | Join (a, _, b) -> is_spj a && is_spj b
  | Rename _ | Union _ | Diff _ -> false

let rec is_sp = function
  | Base _ -> true
  | Select (_, e) | Project (_, e) -> is_sp e
  | Rename _ | Join _ | Union _ | Diff _ -> false

let is_setop_of_sp = function
  | Union (a, b) | Diff (a, b) -> is_sp a && is_sp b
  | Base _ | Select _ | Project _ | Rename _ | Join _ -> false

let rec rewrite_bases f = function
  | Base n -> f n
  | Select (p, e) -> Select (p, rewrite_bases f e)
  | Project (names, e) -> Project (names, rewrite_bases f e)
  | Rename (m, e) -> Rename (m, rewrite_bases f e)
  | Join (a, p, b) -> Join (rewrite_bases f a, p, rewrite_bases f b)
  | Union (a, b) -> Union (rewrite_bases f a, rewrite_bases f b)
  | Diff (a, b) -> Diff (rewrite_bases f a, rewrite_bases f b)

let rec size = function
  | Base _ -> 1
  | Select (_, e) | Project (_, e) | Rename (_, e) -> 1 + size e
  | Join (a, _, b) | Union (a, b) | Diff (a, b) -> 1 + size a + size b

let equal a b = Stdlib.compare a b = 0

let rec pp fmt = function
  | Base n -> Format.pp_print_string fmt n
  | Select (p, e) -> Format.fprintf fmt "sel[%a](%a)" Predicate.pp p pp e
  | Project (names, e) ->
    Format.fprintf fmt "proj[%s](%a)" (String.concat "," names) pp e
  | Rename (m, e) ->
    Format.fprintf fmt "rho[%s](%a)"
      (String.concat ","
         (List.map (fun (a, b) -> a ^ "->" ^ b) m))
      pp e
  | Join (a, Predicate.True, b) -> Format.fprintf fmt "(%a join %a)" pp a pp b
  | Join (a, p, b) ->
    Format.fprintf fmt "(%a join[%a] %a)" pp a Predicate.pp p pp b
  | Union (a, b) -> Format.fprintf fmt "(%a union %a)" pp a pp b
  | Diff (a, b) -> Format.fprintf fmt "(%a minus %a)" pp a pp b

let to_string e = Format.asprintf "%a" pp e

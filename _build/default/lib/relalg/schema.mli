(** Relation schemas: an ordered list of typed attributes plus an
    optional primary key.

    Attribute names are globally meaningful in the Squirrel view
    definition language (the paper's attribute-based algebra assumes
    attribute names are not reused across unrelated relations, and
    defers renaming); joins are theta-joins combined with natural
    equality on shared attribute names. *)

type t

exception Schema_error of string

val make : ?key:string list -> (string * Value.ty) list -> t
(** [make ~key attrs] builds a schema. Attribute names must be distinct
    and the key (if any) must be a subset of the attributes.
    @raise Schema_error otherwise. *)

val attrs : t -> string list
(** Attribute names in declaration order. *)

val typed_attrs : t -> (string * Value.ty) list

val key : t -> string list
(** Primary key attributes; empty if none declared. *)

val has_key : t -> bool

val mem : t -> string -> bool

val ty_of_attr : t -> string -> Value.ty
(** @raise Schema_error if the attribute is absent. *)

val arity : t -> int

val project : t -> string list -> t
(** [project s names] restricts [s] to [names] (reordered to [names]'
    order). The key is kept only if all key attributes survive.
    @raise Schema_error if a name is absent. *)

val join : t -> t -> t
(** Schema of a (natural + theta) join: union of attributes, shared
    names merged (types must agree). Keys combine as the union of the
    two keys when both sides have keys, otherwise no key.
    @raise Schema_error on a type conflict for a shared attribute. *)

val union_compatible : t -> t -> bool
(** True when both schemas have the same attribute names and types,
    in the same order. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val restrict_key : t -> string list -> t
(** Replace the declared key. @raise Schema_error if not a subset. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Smap = Map.Make (String)

type t = Value.t Smap.t

let empty = Smap.empty
let of_list l = List.fold_left (fun m (k, v) -> Smap.add k v m) Smap.empty l
let to_list t = Smap.bindings t

let get t name =
  match Smap.find_opt name t with
  | Some v -> v
  | None -> raise Not_found

let find_opt t name = Smap.find_opt name t
let mem t name = Smap.mem name t
let set t name v = Smap.add name v t
let attrs t = List.map fst (Smap.bindings t)
let arity t = Smap.cardinal t

let project t names =
  List.fold_left (fun acc n -> Smap.add n (get t n) acc) Smap.empty names

let agree_on a b names =
  List.for_all (fun n -> Value.equal (get a n) (get b n)) names

let concat a b =
  let ok = ref true in
  let merged =
    Smap.union
      (fun _ va vb ->
        if Value.equal va vb then Some va
        else begin
          ok := false;
          Some va
        end)
      a b
  in
  if !ok then Some merged else None

let matches_schema t schema =
  arity t = Schema.arity schema
  && List.for_all
       (fun (name, ty) ->
         match find_opt t name with
         | None -> false
         | Some Value.Null -> true
         | Some v -> Value.ty_of v = Some ty)
       (Schema.typed_attrs schema)

let compare = Smap.compare Value.compare
let equal = Smap.equal Value.equal

let hash t =
  Smap.fold (fun k v acc -> Hashtbl.hash (acc, k, Value.hash v)) t 17

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt (k, v) -> Format.fprintf fmt "%s=%a" k Value.pp v))
    (Smap.bindings t)

let to_string t = Format.asprintf "%a" pp t

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

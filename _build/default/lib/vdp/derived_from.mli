(** The [derived_from] function of Sec. 6.3.

    [derived_from vdp ~node ~attrs ~cond] determines, for a request
    [π_attrs σ_cond node], which projections/selections of the node's
    children suffice to construct it: a list of triples
    [(child, B, g)] meaning [π_B σ_g child] is needed.

    For each child [S] of [def(node)]:
    {ul
    {- [B = (attrs ∩ attr(S)) ∪ D_S], where [D_S] are the attributes of
       [S] used in select and join conditions inside the definition
       (cases (1)–(3) of the paper);}
    {- when the definition is a difference, [B] additionally includes
       the definition's output attributes [C] (case (4)): membership of
       whole tuples matters on both sides of a difference;}
    {- [g] is [cond] restricted to the conjuncts mentioning only
       attributes of [S] — a sound (possibly wider) push-down.}}

    Children contributing no attributes are omitted. *)

open Relalg

val derived_from :
  Graph.t ->
  node:string ->
  attrs:string list ->
  cond:Predicate.t ->
  (string * string list * Predicate.t) list
(** @raise Graph.Vdp_error if [node] is a leaf or unknown.
    @raise Schema.Schema_error if [attrs] is not within the node's
    schema. *)

val needed_attrs_of_children : Graph.t -> string -> (string * string list) list
(** For update propagation: the attributes of each child that the
    node's definition reads (condition attributes plus attributes
    surviving to the node's schema). Equals
    [derived_from ~attrs:(all of schema) ~cond:True] without the
    selection components. *)

val restrict_def :
  Graph.t -> node:string -> attrs:string list -> cond:Predicate.t -> Expr.t
(** [def node] with its internal projection lists narrowed to the
    attributes needed to compute [π_attrs σ_cond node]: the request's
    attributes, every condition attribute inside the definition, and —
    for difference definitions — the full output width (set membership
    is decided on whole tuples). The result evaluates correctly over
    children restricted to their [derived_from] projections, and is
    semantically equivalent to [def node] over full children. *)

open Relalg

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let node_label ?annotation vdp name =
  let node = Graph.node vdp name in
  let attrs = Schema.attrs node.Graph.schema in
  let attr_str =
    match node.Graph.kind with
    | Graph.Leaf _ -> String.concat ", " attrs
    | Graph.Derived _ -> (
      match annotation with
      | None -> String.concat ", " attrs
      | Some ann ->
        String.concat ", "
          (List.map
             (fun a ->
               match Annotation.mark ann ~node:name ~attr:a with
               | Annotation.M -> a ^ "ᵐ"
               | Annotation.V -> a ^ "ᵛ")
             attrs))
  in
  Printf.sprintf "%s\\n[%s]" (escape name) (escape attr_str)

let render ?annotation vdp =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph vdp {\n";
  out "  rankdir=BT;\n";
  out "  node [fontname=\"Helvetica\"];\n";
  (* source databases below the dotted line: one cluster per source *)
  List.iteri
    (fun i source ->
      out "  subgraph cluster_src_%d {\n" i;
      out "    label=\"%s\"; style=dashed;\n" (escape source);
      List.iter
        (fun leaf ->
          out "    \"%s\" [shape=box, label=\"%s\"];\n" (escape leaf)
            (node_label ?annotation vdp leaf))
        (Graph.leaves_of_source vdp source);
      out "  }\n")
    (Graph.sources vdp);
  (* mediator nodes *)
  List.iter
    (fun node ->
      let name = node.Graph.name in
      let shape = if node.Graph.export then "doublecircle" else "ellipse" in
      out "  \"%s\" [shape=%s, label=\"%s\"];\n" (escape name) shape
        (node_label ?annotation vdp name))
    (Graph.non_leaves vdp);
  (* derivation edges, child -> parent (updates flow upward) *)
  List.iter
    (fun (parent, child) ->
      out "  \"%s\" -> \"%s\";\n" (escape child) (escape parent))
    (Graph.edges vdp);
  out "}\n";
  Buffer.contents buf

open Relalg
module Sset = Set.Make (String)

(* All attributes appearing in select or join conditions within a
   definition expression. *)
let rec condition_attrs = function
  | Expr.Base _ -> Sset.empty
  | Expr.Select (p, e) ->
    Sset.union (Sset.of_list (Predicate.attrs p)) (condition_attrs e)
  | Expr.Project (_, e) | Expr.Rename (_, e) -> condition_attrs e
  | Expr.Join (a, p, b) ->
    Sset.union
      (Sset.of_list (Predicate.attrs p))
      (Sset.union (condition_attrs a) (condition_attrs b))
  | Expr.Union (a, b) | Expr.Diff (a, b) ->
    Sset.union (condition_attrs a) (condition_attrs b)

(* Natural-join equality on shared attribute names is implicit in the
   Join constructor; shared attributes are condition attributes too. *)
let rec implicit_join_attrs env = function
  | Expr.Base _ -> Sset.empty
  | Expr.Select (_, e) | Expr.Project (_, e) | Expr.Rename (_, e) ->
    implicit_join_attrs env e
  | Expr.Join (a, _, b) ->
    let sa = Expr.schema_of env a and sb = Expr.schema_of env b in
    let shared =
      List.filter (fun n -> Schema.mem sb n) (Schema.attrs sa)
    in
    Sset.union (Sset.of_list shared)
      (Sset.union (implicit_join_attrs env a) (implicit_join_attrs env b))
  | Expr.Union (a, b) | Expr.Diff (a, b) ->
    Sset.union (implicit_join_attrs env a) (implicit_join_attrs env b)

let derived_from vdp ~node ~attrs ~cond =
  let n = Graph.node vdp node in
  let def =
    match n.Graph.kind with
    | Graph.Derived e -> e
    | Graph.Leaf _ -> raise (Graph.Vdp_error (node ^ " is a leaf"))
  in
  List.iter
    (fun a -> ignore (Schema.ty_of_attr n.Graph.schema a))
    attrs;
  let env = Graph.schema_env vdp in
  let cond_attrs =
    Sset.union (condition_attrs def) (implicit_join_attrs env def)
  in
  let extra =
    (* case (4): difference nodes additionally need the output
       attributes of both children to decide membership *)
    if Expr.contains_diff def then Sset.of_list (Schema.attrs n.Graph.schema)
    else Sset.empty
  in
  let wanted = Sset.union (Sset.of_list attrs) (Sset.union cond_attrs extra) in
  List.filter_map
    (fun child ->
      let child_schema = Graph.schema_env vdp child in
      let child_attrs = Schema.attrs child_schema in
      let b = List.filter (fun a -> Sset.mem a wanted) child_attrs in
      if b = [] then None
      else
        let g = Predicate.restrict_to cond child_attrs in
        Some (child, b, g))
    (Graph.children vdp node)

let restrict_def vdp ~node ~attrs ~cond =
  let n = Graph.node vdp node in
  let def =
    match n.Graph.kind with
    | Graph.Derived e -> e
    | Graph.Leaf _ -> raise (Graph.Vdp_error (node ^ " is a leaf"))
  in
  let env = Graph.schema_env vdp in
  let extra =
    if Expr.contains_diff def then Sset.of_list (Schema.attrs n.Graph.schema)
    else Sset.empty
  in
  let wanted =
    List.fold_left
      (fun acc s -> Sset.union acc s)
      (Sset.of_list attrs)
      [
        Sset.of_list (Predicate.attrs cond);
        condition_attrs def;
        implicit_join_attrs env def;
        extra;
      ]
  in
  (* union/difference operands must stay union-compatible whatever
     width their children are served at, so they get explicit
     projections onto their (narrowed) output schema *)
  let setop_operand e =
    let out = Schema.attrs (Expr.schema_of env e) in
    List.filter (fun a -> Sset.mem a wanted) out
  in
  let rec narrow = function
    | Expr.Base _ as e -> e
    | Expr.Select (p, e) -> Expr.Select (p, narrow e)
    (* renaming only occurs in leaf-parent definitions, which are
       never narrowed (they are polled whole); keep it untouched *)
    | Expr.Rename (m, e) -> Expr.Rename (m, narrow e)
    | Expr.Project (l, e) ->
      Expr.Project (List.filter (fun a -> Sset.mem a wanted) l, narrow e)
    | Expr.Join (a, p, b) -> Expr.Join (narrow a, p, narrow b)
    | Expr.Union (a, b) ->
      Expr.Union
        (Expr.Project (setop_operand a, narrow a),
         Expr.Project (setop_operand b, narrow b))
    | Expr.Diff (a, b) ->
      Expr.Diff
        (Expr.Project (setop_operand a, narrow a),
         Expr.Project (setop_operand b, narrow b))
  in
  narrow def

let needed_attrs_of_children vdp node =
  let schema = (Graph.node vdp node).Graph.schema in
  List.map
    (fun (child, b, _) -> (child, b))
    (derived_from vdp ~node ~attrs:(Schema.attrs schema) ~cond:Predicate.True)

open Relalg
module Sset = Set.Make (String)

exception Builder_error of string

let err fmt = Format.kasprintf (fun s -> raise (Builder_error s)) fmt

type leaf_parent = {
  lp_name : string;
  leaf : string;
  cond : Predicate.t; (* in the renamed namespace *)
  renames : (string * string) list list; (* innermost first *)
  mutable forced_attrs : Sset.t; (* attrs requested by explicit projections *)
}

type ir_node = { ir_name : string; ir_def : Expr.t; ir_export : bool }

type t = {
  source_of : string -> string option;
  schema_of : string -> Schema.t option;
  mutable leaves : string list; (* source relations used *)
  mutable leaf_parents : leaf_parent list;
  mutable ir : ir_node list; (* reverse order of definition *)
  mutable counter : int;
}

let create ~source_of ~schema_of () =
  { source_of; schema_of; leaves = []; leaf_parents = []; ir = []; counter = 0 }

let is_node t name = List.exists (fun n -> String.equal n.ir_name name) t.ir

let is_leaf_parent t name =
  List.exists (fun lp -> String.equal lp.lp_name name) t.leaf_parents

let is_source t name = Option.is_some (t.source_of name)

let fresh_name t base =
  t.counter <- t.counter + 1;
  Printf.sprintf "%s_%d" base t.counter

let leaf_parent_name t leaf =
  let existing =
    List.length
      (List.filter (fun lp -> String.equal lp.leaf leaf) t.leaf_parents)
  in
  if existing = 0 then leaf ^ "'" else Printf.sprintf "%s'%d" leaf (existing + 1)

let get_leaf_parent_gen t leaf renames cond =
  match
    List.find_opt
      (fun lp ->
        String.equal lp.leaf leaf
        && Predicate.equal lp.cond cond
        && lp.renames = renames)
      t.leaf_parents
  with
  | Some lp -> lp
  | None ->
    if not (List.mem leaf t.leaves) then t.leaves <- leaf :: t.leaves;
    let lp =
      {
        lp_name = leaf_parent_name t leaf;
        leaf;
        cond;
        renames;
        forced_attrs = Sset.empty;
      }
    in
    t.leaf_parents <- lp :: t.leaf_parents;
    lp

let get_leaf_parent t leaf cond = get_leaf_parent_gen t leaf [] cond

let get_renamed_leaf_parent t leaf renames cond =
  get_leaf_parent_gen t leaf renames cond

(* Strip a select/project/rename chain: returns (conditions, outermost
   projection, renamings innermost-first, core). Conditions written
   above a renaming are rewritten into the source namespace so the
   whole chain normalizes to proj . sel . rename(s) . base. *)
let rec strip_sp conds proj renames = function
  | Expr.Select (p, e) -> strip_sp (p :: conds) proj renames e
  | Expr.Project (a, e) ->
    let proj = match proj with None -> Some a | Some _ -> proj in
    strip_sp conds proj renames e
  | Expr.Rename (m, e) -> strip_sp conds proj (m :: renames) e
  | core -> (List.rev conds, proj, List.rev renames, core)

let is_sp_over_single_name e =
  match Expr.base_occurrences e with
  | [ n ] -> Expr.is_select_project_of n e
  | _ -> false

let rebuild_chain conds proj core =
  let with_sel = List.fold_left (fun e p -> Expr.select p e) core conds in
  match proj with None -> with_sel | Some a -> Expr.project a with_sel

(* Lower an expression over source relations / node names into an
   expression over VDP node names, creating leaf-parents and
   intermediate nodes as needed. [owner] provides a base name for
   generated intermediates. *)
let rec lower t ~owner expr =
  let conds, proj, renames, core = strip_sp [] None [] expr in
  match core with
  | Expr.Base name when renames <> [] ->
    if not (is_source t name) then
      err "rename is only supported directly around source relations \
           (leaf-parent definitions); %S is not a source" name;
    let lp =
      get_renamed_leaf_parent t name renames
        (Predicate.simplify (Predicate.conj conds))
    in
    (match proj with
    | Some attrs ->
      lp.forced_attrs <- Sset.union lp.forced_attrs (Sset.of_list attrs)
    | None -> ());
    rebuild_chain [] proj (Expr.base lp.lp_name)
  | Expr.Base name ->
    if is_node t name || is_leaf_parent t name then
      rebuild_chain conds proj (Expr.base name)
    else if is_source t name then begin
      let lp = get_leaf_parent t name (Predicate.simplify (Predicate.conj conds)) in
      (match proj with
      | Some attrs -> lp.forced_attrs <- Sset.union lp.forced_attrs (Sset.of_list attrs)
      | None -> ());
      rebuild_chain [] proj (Expr.base lp.lp_name)
    end
    else err "unknown relation or node %S" name
  | Expr.Join (a, p, b) ->
    let la = spj_child t ~owner a in
    let lb = spj_child t ~owner b in
    rebuild_chain conds proj (Expr.join ~on:p la lb)
  | Expr.Union (a, b) ->
    let la = setop_child t ~owner a in
    let lb = setop_child t ~owner b in
    rebuild_chain conds proj (Expr.union la lb)
  | Expr.Diff (a, b) ->
    let la = setop_child t ~owner a in
    let lb = setop_child t ~owner b in
    rebuild_chain conds proj (Expr.diff la lb)
  | Expr.Select _ | Expr.Project _ | Expr.Rename _ ->
    assert false (* stripped *)

(* A child of a join must be SPJ over node names. *)
and spj_child t ~owner expr =
  let lowered = lower t ~owner expr in
  if Expr.is_spj lowered then lowered else nodeify t ~owner lowered

(* A child of a union/difference must be a select/project chain over a
   single node (restriction (c)). *)
and setop_child t ~owner expr =
  let lowered = lower t ~owner expr in
  if is_sp_over_single_name lowered then lowered
  else nodeify t ~owner lowered

and nodeify t ~owner lowered =
  let name = fresh_name t owner in
  t.ir <- { ir_name = name; ir_def = lowered; ir_export = false } :: t.ir;
  Expr.base name

let add_named t ~name ~export expr =
  if is_node t name || is_leaf_parent t name || is_source t name then
    err "name %S is already in use" name;
  let def = lower t ~owner:name expr in
  t.ir <- { ir_name = name; ir_def = def; ir_export = export } :: t.ir

let add_export t ~name expr = add_named t ~name ~export:true expr
let add_node t ~name expr = add_named t ~name ~export:false expr

(* attributes of [child] that the definition [e] (over node names)
   needs: condition attributes + attributes surviving to the output *)
let needed_from ~schema_env e child_attrs =
  let out_attrs =
    match Expr.schema_of schema_env e with
    | s -> Sset.of_list (Schema.attrs s)
    | exception _ -> Sset.empty
  in
  let rec cond_attrs = function
    | Expr.Base _ -> Sset.empty
    | Expr.Select (p, e) -> Sset.union (Sset.of_list (Predicate.attrs p)) (cond_attrs e)
    | Expr.Project (_, e) -> cond_attrs e
    | Expr.Join (a, p, b) ->
      Sset.union
        (Sset.of_list (Predicate.attrs p))
        (Sset.union (cond_attrs a) (cond_attrs b))
    | Expr.Rename (_, e) -> cond_attrs e
    | Expr.Union (a, b) | Expr.Diff (a, b) -> Sset.union (cond_attrs a) (cond_attrs b)
  in
  Sset.inter (Sset.of_list child_attrs) (Sset.union out_attrs (cond_attrs e))

let build t =
  let ir = List.rev t.ir in
  let leaf_schema leaf =
    match t.schema_of leaf with
    | Some s -> s
    | None -> err "no schema for source relation %S" leaf
  in
  (* the leaf schema as seen through the leaf-parent's renamings *)
  let lp_renamed_schema lp =
    List.fold_left
      (fun schema mapping ->
        try
          Expr.schema_of
            (fun _ -> schema)
            (Expr.Rename (mapping, Expr.Base lp.leaf))
        with Expr.Expr_error msg ->
          err "leaf-parent %s: %s" lp.lp_name msg)
      (leaf_schema lp.leaf) lp.renames
  in
  let provisional_env name =
    match List.find_opt (fun lp -> String.equal lp.lp_name name) t.leaf_parents with
    | Some lp -> lp_renamed_schema lp
    | None -> (
      match t.schema_of name with
      | Some s -> s
      | None -> (
        (* derived IR node: compute lazily below *)
        err "provisional_env: unresolved %S" name))
  in
  (* compute IR node schemas in definition order with full-width
     leaf-parents, then shrink leaf-parents to what parents need *)
  let node_schemas : (string, Schema.t) Hashtbl.t = Hashtbl.create 16 in
  let env name =
    match Hashtbl.find_opt node_schemas name with
    | Some s -> s
    | None -> provisional_env name
  in
  List.iter
    (fun n ->
      match Expr.schema_of env n.ir_def with
      | s -> Hashtbl.replace node_schemas n.ir_name s
      | exception Expr.Expr_error msg ->
        err "definition of %S is ill-formed: %s" n.ir_name msg)
    ir;
  (* accumulate, per leaf-parent, the attributes its parents need *)
  let lp_needs : (string, Sset.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun n ->
      List.iter
        (fun lp ->
          if List.mem lp.lp_name (Expr.base_names n.ir_def) then begin
            let child_attrs = Schema.attrs (lp_renamed_schema lp) in
            let needed = needed_from ~schema_env:env n.ir_def child_attrs in
            let prev =
              match Hashtbl.find_opt lp_needs lp.lp_name with
              | Some s -> s
              | None -> lp.forced_attrs
            in
            Hashtbl.replace lp_needs lp.lp_name (Sset.union prev needed)
          end)
        t.leaf_parents)
    ir;
  let lp_final lp =
    let full = Schema.attrs (lp_renamed_schema lp) in
    let acc =
      match Hashtbl.find_opt lp_needs lp.lp_name with
      | Some s -> Sset.union s lp.forced_attrs
      | None -> Sset.of_list full (* unused leaf-parent: keep everything *)
    in
    List.filter (fun a -> Sset.mem a acc) full
  in
  let leaf_nodes =
    List.map
      (fun leaf ->
        let source =
          match t.source_of leaf with
          | Some s -> s
          | None -> err "no source for relation %S" leaf
        in
        {
          Graph.name = leaf;
          schema = leaf_schema leaf;
          kind = Graph.Leaf { source };
          export = false;
        })
      (List.sort_uniq String.compare t.leaves)
  in
  let lp_nodes =
    List.map
      (fun lp ->
        let renamed_s = lp_renamed_schema lp in
        let keep = lp_final lp in
        let def =
          let base =
            List.fold_left
              (fun e mapping -> Expr.rename mapping e)
              (Expr.base lp.leaf) lp.renames
          in
          let selected =
            if Predicate.equal lp.cond Predicate.True then base
            else Expr.select lp.cond base
          in
          if List.length keep = List.length (Schema.attrs renamed_s) then
            selected
          else Expr.project keep selected
        in
        {
          Graph.name = lp.lp_name;
          schema = Schema.project renamed_s keep;
          kind = Graph.Derived def;
          export = false;
        })
      (List.rev t.leaf_parents)
  in
  (* final env including shrunk leaf-parents *)
  let final_env_tbl : (string, Schema.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun n -> Hashtbl.replace final_env_tbl n.Graph.name n.Graph.schema)
    (leaf_nodes @ lp_nodes);
  let derived_nodes =
    List.map
      (fun n ->
        let env name =
          match Hashtbl.find_opt final_env_tbl name with
          | Some s -> s
          | None -> err "unresolved name %S in %S" name n.ir_name
        in
        let schema = Expr.schema_of env n.ir_def in
        Hashtbl.replace final_env_tbl n.ir_name schema;
        {
          Graph.name = n.ir_name;
          schema;
          kind = Graph.Derived n.ir_def;
          export = n.ir_export;
        })
      ir
  in
  Graph.make (leaf_nodes @ lp_nodes @ derived_nodes)

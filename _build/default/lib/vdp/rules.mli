(** The VDP rulebase (Sec. 5.2): update-propagation rules attached to
    VDP edges.

    Every edge [(v, c)] carries a rule that turns an incremental update
    [Δc] into a contribution to [Δv]. The rules are derived mechanically
    from [def v]:

    {ul
    {- {b SPJ} (select/project/join): the linear rule
       [ΔT = π σ (R₁ ⋈ … ⋈ ΔRᵢ ⋈ … ⋈ Rₙ)];}
    {- {b Union}: [ΔT = ΔRᵢ] (filtered/projected);}
    {- {b Difference}: membership transitions (the paper's published
       [diff1] rule contains a typo — [(ΔT)⁻ = (ΔR₁)⁻ ∩ R₂] should be
       [(ΔT)⁻ = (ΔR₁)⁻ − R₂]; we implement the corrected rule — see
       DESIGN.md).}}

    When several children of a node change in the same update
    transaction, firing per-edge rules naively double-counts or misses
    the cross terms (Example 6.1); [fire_node] uses the telescoped
    combination [ΔA ⋈ apply(B, ΔB) ⊎ A ⋈ ΔB], which is exact. *)

open Relalg
open Delta

val fire_edge :
  Graph.t ->
  env:(string -> Bag.t option) ->
  node:string ->
  child:string ->
  Rel_delta.t ->
  Rel_delta.t
(** The single-edge rule: the contribution to [Δnode] when only
    [child] changed (other children at their [env] values). This is
    rule #1/#2 of Example 2.1. *)

val fire_node :
  Graph.t ->
  env:(string -> Bag.t option) ->
  node:string ->
  (string * Rel_delta.t) list ->
  Rel_delta.t
(** Fire all eligible in-edge rules of the node at once, with exact
    handling of simultaneous child deltas; [env] must give the
    {e pre-update} child populations. *)

val describe_edge : Graph.t -> node:string -> child:string -> string
(** Human-readable rendering of the rule for an edge, in the style of
    Sec. 5.2 ("on Δ(R'), ΔT = ΔR' ⋈ S'"). *)

val describe : Graph.t -> string
(** The whole rulebase, one rule per line. *)

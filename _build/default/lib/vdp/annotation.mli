(** Per-attribute materialized/virtual annotations of a VDP (Sec. 5.1).

    An annotation maps every attribute of every non-leaf node to
    [M]aterialized or [V]irtual. The notation [\[a^m, b^v\]] of the
    paper corresponds to [of_list ["T", ["a", M; "b", V]]]. *)


type mark = M | V

type t

exception Annotation_error of string

val fully_materialized : Graph.t -> t
(** Every attribute of every non-leaf node marked [M] (Example 2.1). *)

val fully_virtual : Graph.t -> t
(** Every attribute of every non-leaf node marked [V]: the classical
    virtual-view approach. *)

val of_list : Graph.t -> (string * (string * mark) list) list -> t
(** Explicit per-node annotations; unlisted nodes default to fully
    materialized, unlisted attributes of a listed node to [M].
    @raise Annotation_error on unknown nodes/attributes. *)

val with_node : t -> Graph.t -> string -> (string * mark) list -> t
(** Functional update of one node's annotation. *)

val mark : t -> node:string -> attr:string -> mark
val materialized_attrs : t -> string -> string list
(** In the node's schema attribute order. *)

val virtual_attrs : t -> string -> string list

val is_fully_materialized : t -> string -> bool
val is_fully_virtual : t -> string -> bool
val is_hybrid : t -> string -> bool

val materialized_nodes : t -> string list
(** Nodes with at least one materialized attribute (these have a table
    in the local store). *)

val has_fully_materialized_support : t -> Graph.t -> string -> bool
(** True when the node and all its non-leaf descendants are fully
    materialized — the precondition for maintaining it by the IUP
    Kernel Algorithm alone, without any polling (approach (1) of the
    introduction). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** View Decomposition Plans (Sec. 5.1).

    A VDP is a labelled DAG [(V, E, relation, source, def, Export)]:
    leaves are relations of source databases; each non-leaf node [v]
    carries a definition [def v] — an algebra expression over the
    relations of its children — and the edge set is implied by the
    base names occurring in the definitions. Export nodes form the
    integrated view's interface.

    Structural restrictions (Def. 5.1) enforced by [make]:
    {ul
    {- a {e leaf-parent} (parent of a leaf) may only select/project a
       single leaf — restriction (a);}
    {- any other node is either an arbitrary select/project/join
       combination — restriction (b) — or a top-level union or
       difference with only select/project chains underneath —
       restriction (c);}
    {- leaves may only appear as children of leaf-parents, the graph
       is acyclic, and every maximal node is exported.}}

    Nodes whose definition involves difference are {e set nodes} and
    store sets; all other non-leaf nodes are {e bag nodes}. *)

open Relalg

type node_kind =
  | Leaf of { source : string }
      (** A relation of the named source database. *)
  | Derived of Expr.t
      (** [def v], over the names of the node's children. *)

type node = {
  name : string;
  schema : Schema.t;
  kind : node_kind;
  export : bool;
}

type t

exception Vdp_error of string

val make : node list -> t
(** Validate and build. @raise Vdp_error on any violation of the
    structural restrictions, a dangling child name, a schema mismatch
    between a definition and its node's declared schema, or a cycle. *)

val node : t -> string -> node
(** @raise Vdp_error if absent. *)

val node_opt : t -> string -> node option
val mem : t -> string -> bool
val nodes : t -> node list
val node_names : t -> string list

val def : t -> string -> Expr.t
(** Definition of a non-leaf node. @raise Vdp_error for a leaf. *)

val children : t -> string -> string list
(** Distinct children, in definition order; empty for leaves. *)

val parents : t -> string -> string list
val edges : t -> (string * string) list
(** All (parent, child) pairs. *)

val leaves : t -> node list
val leaf_parents : t -> node list
val exports : t -> node list
val non_leaves : t -> node list

val source_of_leaf : t -> string -> string
(** Source database of a leaf. @raise Vdp_error for a non-leaf. *)

val is_leaf : t -> string -> bool
val is_set_node : t -> string -> bool
(** True when the node's definition involves difference (its relation
    is stored as a set). *)

val topo_order : t -> string list
(** Non-leaf node names, children before parents — the processing
    order of the IUP's upward traversal. *)

val descendants : t -> string -> string list
(** All nodes reachable downward (not including the node itself). *)

val ancestors : t -> string -> string list

val schema_env : t -> string -> Schema.t
(** Schemas of all nodes, for [Expr.schema_of]. *)

val expanded_def : t -> string -> Expr.t
(** The node's definition with every non-leaf base recursively
    replaced by its own definition: an expression over source (leaf)
    relations only. For an export node this is exactly the view
    definition ν of Sec. 3 — the correctness checker evaluates it
    against source-state histories. *)

val sources : t -> string list
(** Distinct source database names, sorted. *)

val leaves_of_source : t -> string -> string list
(** Leaf relation names contributed by the given source. *)

val pp : Format.formatter -> t -> unit
(** Render the VDP structure, one node per line (leaves marked with
    [[]], exports with doubled circles, per the paper's figures). *)

(** Construction of VDPs from integrated-view specifications.

    This is the planning half of the Squirrel generator ([ZHK95]): the
    user states export relations as algebra expressions over source
    relations; the builder decomposes them into a VDP that satisfies
    the structural restrictions of Def. 5.1:

    {ul
    {- one leaf node per source relation used;}
    {- one {e leaf-parent} node per (source relation, selection
       condition) pair, absorbing the selections written around the
       relation and projecting exactly the attributes that ancestors
       need (so Example 2.1's [R'] keeps [r1,r2,r3], dropping the
       selection attribute [r4]);}
    {- intermediate nodes generated wherever the restrictions require
       them (e.g. a join under a difference becomes its own node, like
       [F] in Example 5.1);}
    {- a node per export relation.}}

    Expressions may also refer to previously added nodes by name
    (Example 5.1's [G] refers to [E]), so multiple exports share
    sub-plans. *)

open Relalg

type t

exception Builder_error of string

val create :
  source_of:(string -> string option) ->
  schema_of:(string -> Schema.t option) ->
  unit ->
  t
(** [source_of rel] and [schema_of rel] describe the available source
    relations (None = unknown name). *)

val add_export : t -> name:string -> Expr.t -> unit
(** Add an export relation. Names must be fresh.
    @raise Builder_error on name clashes or unknown relations. *)

val add_node : t -> name:string -> Expr.t -> unit
(** Add a named non-export node (it must end up with a parent by
    [build] time, or be promoted to export by Graph validation
    failure). *)

val build : t -> Graph.t
(** Assemble and validate. Leaf-parent projections are computed here
    from the needs of all their parents.
    @raise Builder_error / Graph.Vdp_error on inconsistencies. *)

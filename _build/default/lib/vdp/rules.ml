open Relalg
open Delta

let fire_node vdp ~env ~node child_deltas =
  let def = Graph.def vdp node in
  let deltas name = List.assoc_opt name child_deltas in
  Inc_eval.delta_of_expr ~env ~deltas def

let fire_edge vdp ~env ~node ~child delta =
  fire_node vdp ~env ~node [ (child, delta) ]

let describe_edge vdp ~node ~child =
  let def = Graph.def vdp node in
  let marked =
    Expr.rewrite_bases
      (fun n -> if String.equal n child then Expr.base ("Δ" ^ n) else Expr.base n)
      def
  in
  Format.asprintf "on Δ(%s): Δ(%s) = %a" child node Expr.pp marked

let describe vdp =
  let lines =
    List.concat_map
      (fun node ->
        List.map
          (fun child -> describe_edge vdp ~node ~child)
          (Graph.children vdp node))
      (Graph.topo_order vdp)
  in
  String.concat "\n" lines

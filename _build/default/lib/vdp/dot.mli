(** Graphviz rendering of (annotated) VDPs — the pictures of Figures 1
    and 4.

    Leaves draw as boxes grouped per source database (below the
    paper's dotted line); export relations as double circles; nodes
    are labelled with their attribute lists, superscripted m/v when an
    annotation is supplied. *)

val render : ?annotation:Annotation.t -> Graph.t -> string
(** A complete [digraph] document; feed to [dot -Tsvg]. *)

open Relalg
module Smap = Map.Make (String)

type mark = M | V

type node_ann = { order : string list; marks : mark Smap.t }

type t = node_ann Smap.t

exception Annotation_error of string

let err fmt = Format.kasprintf (fun s -> raise (Annotation_error s)) fmt

let constant vdp m =
  List.fold_left
    (fun acc node ->
      let order = Schema.attrs node.Graph.schema in
      let marks =
        List.fold_left (fun am a -> Smap.add a m am) Smap.empty order
      in
      Smap.add node.Graph.name { order; marks } acc)
    Smap.empty (Graph.non_leaves vdp)

let fully_materialized vdp = constant vdp M
let fully_virtual vdp = constant vdp V

let with_node t vdp name mark_list =
  let node = Graph.node vdp name in
  (match node.Graph.kind with
  | Graph.Leaf _ -> err "leaf %S cannot be annotated" name
  | Graph.Derived _ -> ());
  let schema = node.Graph.schema in
  List.iter
    (fun (a, _) ->
      if not (Schema.mem schema a) then err "node %S has no attribute %S" name a)
    mark_list;
  let order = Schema.attrs schema in
  let marks =
    List.fold_left
      (fun am attr ->
        let m =
          match List.assoc_opt attr mark_list with Some m -> m | None -> M
        in
        Smap.add attr m am)
      Smap.empty order
  in
  Smap.add name { order; marks } t

let of_list vdp per_node =
  List.fold_left
    (fun acc (name, mark_list) -> with_node acc vdp name mark_list)
    (fully_materialized vdp) per_node

let node_ann t name =
  match Smap.find_opt name t with
  | Some na -> na
  | None -> err "node %S is not annotated" name

let mark t ~node ~attr =
  let na = node_ann t node in
  match Smap.find_opt attr na.marks with
  | Some m -> m
  | None -> err "attribute %S of node %S is not annotated" attr node

let attrs_with t name m =
  let na = node_ann t name in
  List.filter (fun a -> Smap.find a na.marks = m) na.order

let materialized_attrs t name = attrs_with t name M
let virtual_attrs t name = attrs_with t name V

let is_fully_materialized t name = virtual_attrs t name = []
let is_fully_virtual t name = materialized_attrs t name = []

let is_hybrid t name =
  (not (is_fully_materialized t name)) && not (is_fully_virtual t name)

let materialized_nodes t =
  List.filter_map
    (fun (name, _) ->
      if materialized_attrs t name <> [] then Some name else None)
    (Smap.bindings t)

let has_fully_materialized_support t vdp name =
  is_fully_materialized t name
  && List.for_all
       (fun d -> Graph.is_leaf vdp d || is_fully_materialized t d)
       (Graph.descendants vdp name)

let equal a b =
  Smap.equal
    (fun x y ->
      List.equal String.equal x.order y.order && Smap.equal ( = ) x.marks y.marks)
    a b

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt (name, na) ->
         Format.fprintf fmt "%s[%a]" name
           (Format.pp_print_list
              ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
              (fun fmt a ->
                Format.fprintf fmt "%s^%s" a
                  (match Smap.find a na.marks with M -> "m" | V -> "v")))
           na.order))
    (Smap.bindings t)

let to_string t = Format.asprintf "%a" pp t

lib/vdp/builder.ml: Expr Format Graph Hashtbl List Option Predicate Printf Relalg Schema Set String

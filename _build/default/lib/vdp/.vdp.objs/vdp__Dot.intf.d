lib/vdp/dot.mli: Annotation Graph

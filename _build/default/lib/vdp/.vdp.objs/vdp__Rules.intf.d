lib/vdp/rules.mli: Bag Delta Graph Rel_delta Relalg

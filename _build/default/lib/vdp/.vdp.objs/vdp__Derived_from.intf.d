lib/vdp/derived_from.mli: Expr Graph Predicate Relalg

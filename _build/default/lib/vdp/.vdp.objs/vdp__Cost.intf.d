lib/vdp/cost.mli: Annotation Graph Predicate Relalg

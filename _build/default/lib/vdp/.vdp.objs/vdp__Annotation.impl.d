lib/vdp/annotation.ml: Format Graph List Map Relalg Schema String

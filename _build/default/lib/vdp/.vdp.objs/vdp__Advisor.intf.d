lib/vdp/advisor.mli: Annotation Cost Graph

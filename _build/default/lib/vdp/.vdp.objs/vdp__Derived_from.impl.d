lib/vdp/derived_from.ml: Expr Graph List Predicate Relalg Schema Set String

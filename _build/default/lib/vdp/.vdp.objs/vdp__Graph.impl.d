lib/vdp/graph.ml: Expr Format Hashtbl List Map Relalg Schema String

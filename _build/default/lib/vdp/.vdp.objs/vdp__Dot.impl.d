lib/vdp/dot.ml: Annotation Buffer Graph List Printf Relalg Schema String

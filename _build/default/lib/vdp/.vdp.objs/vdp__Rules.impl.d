lib/vdp/rules.ml: Delta Expr Format Graph Inc_eval List Relalg String

lib/vdp/advisor.ml: Annotation Cost Derived_from Format Graph List Relalg Schema String

lib/vdp/builder.mli: Expr Graph Relalg Schema

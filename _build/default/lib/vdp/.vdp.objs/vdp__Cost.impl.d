lib/vdp/cost.ml: Annotation Expr Float Graph Hashtbl List Predicate Relalg Schema String

lib/vdp/annotation.mli: Format Graph

lib/vdp/graph.mli: Expr Format Relalg Schema

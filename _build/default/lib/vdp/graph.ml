open Relalg
module Smap = Map.Make (String)

type node_kind = Leaf of { source : string } | Derived of Expr.t

type node = {
  name : string;
  schema : Schema.t;
  kind : node_kind;
  export : bool;
}

type t = {
  by_name : node Smap.t;
  order : string list; (* topological, children before parents, non-leaves *)
  parent_map : string list Smap.t;
}

exception Vdp_error of string

let err fmt = Format.kasprintf (fun s -> raise (Vdp_error s)) fmt

let node_opt t name = Smap.find_opt name t.by_name

let node t name =
  match node_opt t name with
  | Some n -> n
  | None -> err "no node %S in VDP" name

let mem t name = Smap.mem name t.by_name
let nodes t = List.map snd (Smap.bindings t.by_name)
let node_names t = List.map fst (Smap.bindings t.by_name)

let def t name =
  match (node t name).kind with
  | Derived e -> e
  | Leaf _ -> err "node %S is a leaf and has no definition" name

let children t name =
  match (node t name).kind with
  | Leaf _ -> []
  | Derived e -> Expr.base_names e

let parents t name =
  match Smap.find_opt name t.parent_map with Some ps -> ps | None -> []

let edges t =
  Smap.fold
    (fun name n acc ->
      match n.kind with
      | Leaf _ -> acc
      | Derived e ->
        List.fold_left (fun acc c -> (name, c) :: acc) acc (Expr.base_names e))
    t.by_name []

let is_leaf t name =
  match (node t name).kind with Leaf _ -> true | Derived _ -> false

let leaves t = List.filter (fun n -> match n.kind with Leaf _ -> true | _ -> false) (nodes t)
let non_leaves t =
  List.filter (fun n -> match n.kind with Derived _ -> true | _ -> false) (nodes t)

let leaf_parents t =
  List.filter
    (fun n ->
      match n.kind with
      | Leaf _ -> false
      | Derived e -> List.exists (is_leaf t) (Expr.base_names e))
    (nodes t)

let exports t = List.filter (fun n -> n.export) (nodes t)

let source_of_leaf t name =
  match (node t name).kind with
  | Leaf { source } -> source
  | Derived _ -> err "node %S is not a leaf" name

let is_set_node t name =
  match (node t name).kind with
  | Leaf _ -> false
  | Derived e -> Expr.contains_diff e

let topo_order t = t.order

let descendants t name =
  let visited = Hashtbl.create 16 in
  let rec visit n =
    List.iter
      (fun c ->
        if not (Hashtbl.mem visited c) then begin
          Hashtbl.add visited c ();
          visit c
        end)
      (children t n)
  in
  visit name;
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) visited [])

let ancestors t name =
  let visited = Hashtbl.create 16 in
  let rec visit n =
    List.iter
      (fun p ->
        if not (Hashtbl.mem visited p) then begin
          Hashtbl.add visited p ();
          visit p
        end)
      (parents t n)
  in
  visit name;
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) visited [])

let schema_env t name = (node t name).schema

let rec expanded_def t name =
  match (node t name).kind with
  | Leaf _ -> Expr.base name
  | Derived e ->
    Expr.rewrite_bases
      (fun child ->
        match (node t child).kind with
        | Leaf _ -> Expr.base child
        | Derived _ -> expanded_def t child)
      e

let sources t =
  List.sort_uniq String.compare
    (List.filter_map
       (fun n -> match n.kind with Leaf { source } -> Some source | _ -> None)
       (nodes t))

let leaves_of_source t source =
  List.filter_map
    (fun n ->
      match n.kind with
      | Leaf { source = s } when String.equal s source -> Some n.name
      | _ -> None)
    (nodes t)

(* --- validation ------------------------------------------------------ *)

let check_structure by_name =
  let find name =
    match Smap.find_opt name by_name with
    | Some n -> n
    | None -> err "definition refers to unknown node %S" name
  in
  let leaf name = match (find name).kind with Leaf _ -> true | _ -> false in
  Smap.iter
    (fun name n ->
      match n.kind with
      | Leaf _ -> ()
      | Derived e ->
        let child_names = Expr.base_names e in
        if child_names = [] then err "node %S has an empty definition" name;
        let has_leaf_child = List.exists leaf child_names in
        if has_leaf_child then begin
          (* restriction (a): leaf-parents select/project a single leaf *)
          (match child_names with
          | [ c ] ->
            if not (Expr.is_select_project_of c e) then
              err
                "leaf-parent %S must be a select/project of its single leaf \
                 child (restriction (a)); got %s"
                name (Expr.to_string e)
          | _ ->
            err "leaf-parent %S must have exactly one (leaf) child" name);
          if not (List.for_all leaf child_names) then
            err "node %S mixes leaf and non-leaf children" name
        end
        else if not (Expr.is_spj e || Expr.is_setop_of_sp e) then
          err
            "definition of %S is neither SPJ (restriction (b)) nor a \
             union/difference of select/project chains (restriction (c)): %s"
            name (Expr.to_string e);
        (* schema consistency *)
        let env c = (find c).schema in
        let derived =
          try Expr.schema_of env e
          with Expr.Expr_error msg ->
            err "definition of %S is ill-formed: %s" name msg
        in
        if
          not
            (List.equal String.equal (Schema.attrs derived)
               (Schema.attrs n.schema))
        then
          err "node %S declares schema %s but its definition yields %s" name
            (Schema.to_string n.schema)
            (Schema.to_string derived))
    by_name

let compute_topo by_name =
  (* Kahn over non-leaf nodes; leaves have no incoming constraint. *)
  let non_leaf name =
    match (Smap.find name by_name).kind with
    | Derived _ -> true
    | Leaf _ -> false
  in
  let children name =
    match (Smap.find name by_name).kind with
    | Leaf _ -> []
    | Derived e -> List.filter non_leaf (Expr.base_names e)
  in
  let names = List.filter non_leaf (List.map fst (Smap.bindings by_name)) in
  let temp = Hashtbl.create 16 and perm = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit name =
    if Hashtbl.mem perm name then ()
    else if Hashtbl.mem temp name then err "VDP contains a cycle through %S" name
    else begin
      Hashtbl.add temp name ();
      List.iter visit (children name);
      Hashtbl.remove temp name;
      Hashtbl.add perm name ();
      order := name :: !order
    end
  in
  List.iter visit names;
  List.rev !order

let make node_list =
  let by_name =
    List.fold_left
      (fun acc n ->
        if Smap.mem n.name acc then err "duplicate node name %S" n.name
        else Smap.add n.name n acc)
      Smap.empty node_list
  in
  check_structure by_name;
  let order = compute_topo by_name in
  let parent_map =
    Smap.fold
      (fun name n acc ->
        match n.kind with
        | Leaf _ -> acc
        | Derived e ->
          List.fold_left
            (fun acc c ->
              Smap.update c
                (function
                  | None -> Some [ name ]
                  | Some ps -> if List.mem name ps then Some ps else Some (name :: ps))
                acc)
            acc (Expr.base_names e))
      by_name Smap.empty
  in
  let t = { by_name; order; parent_map } in
  (* maximal nodes must be exported *)
  Smap.iter
    (fun name n ->
      match n.kind with
      | Derived _ when parents t name = [] && not n.export ->
        err "maximal node %S must be an export node" name
      | _ -> ())
    by_name;
  (* leaves may only feed leaf-parents: guaranteed by restriction (a)
     checks (a node with a leaf child is a leaf-parent). *)
  t

let pp fmt t =
  let pp_node fmt n =
    match n.kind with
    | Leaf { source } ->
      Format.fprintf fmt "[%s] %a  @@%s" n.name Schema.pp n.schema source
    | Derived e ->
      Format.fprintf fmt "%s%s %a  :=  %a"
        (if n.export then "((" ^ n.name ^ "))" else "(" ^ n.name ^ ")")
        "" Schema.pp n.schema Expr.pp e
  in
  let order_names = t.order in
  let leaves_first =
    List.filter_map
      (fun n -> match n.kind with Leaf _ -> Some n.name | _ -> None)
      (nodes t)
  in
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt name ->
         pp_node fmt (node t name)))
    (leaves_first @ order_names)

open Relalg
open Delta

exception Table_error of string

let err fmt = Format.kasprintf (fun s -> raise (Table_error s)) fmt

module Key_table = Hashtbl.Make (struct
  type t = Value.t list

  let equal = List.equal Value.equal
  let hash key = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 key
end)

type index = { on : string list; entries : int Tuple.Map.t ref Key_table.t }

type t = {
  name : string;
  schema : Schema.t;
  mutable bag : Bag.t;
  indexes : index list;
}

let make_index on = { on; entries = Key_table.create 64 }

let create ?(indexes = []) ~name schema =
  let key = Schema.key schema in
  let index_specs =
    let specs = if key <> [] then key :: indexes else indexes in
    List.sort_uniq compare specs
  in
  List.iter
    (fun spec ->
      List.iter
        (fun a ->
          if not (Schema.mem schema a) then
            err "index on unknown attribute %S of table %s" a name)
        spec)
    index_specs;
  { name; schema; bag = Bag.empty schema; indexes = List.map make_index index_specs }

let name t = t.name
let schema t = t.schema

let index_key index tuple = List.map (Tuple.get tuple) index.on

let index_add index tuple mult =
  let key = index_key index tuple in
  match Key_table.find_opt index.entries key with
  | Some cell ->
    cell :=
      Tuple.Map.update tuple
        (function None -> Some mult | Some m -> Some (m + mult))
        !cell
  | None ->
    Key_table.replace index.entries key (ref (Tuple.Map.singleton tuple mult))

let index_remove index tuple mult =
  let key = index_key index tuple in
  match Key_table.find_opt index.entries key with
  | None -> ()
  | Some cell ->
    cell :=
      Tuple.Map.update tuple
        (function
          | None -> None
          | Some m -> if m > mult then Some (m - mult) else None)
        !cell;
    if Tuple.Map.is_empty !cell then Key_table.remove index.entries key

let insert ?(mult = 1) t tuple =
  t.bag <- Bag.add ~mult t.bag tuple;
  List.iter (fun ix -> index_add ix tuple mult) t.indexes

let delete ?(mult = 1) t tuple =
  let present = Bag.mult t.bag tuple in
  if present > 0 then begin
    let removed = min mult present in
    t.bag <- Bag.remove ~mult:removed t.bag tuple;
    List.iter (fun ix -> index_remove ix tuple removed) t.indexes
  end

let clear t =
  t.bag <- Bag.empty t.schema;
  List.iter (fun ix -> Key_table.reset ix.entries) t.indexes

let load t bag =
  clear t;
  Bag.iter (fun tuple mult -> insert ~mult t tuple) bag

let contents t = t.bag

let apply_delta t delta =
  Rel_delta.fold
    (fun tuple m () ->
      if m > 0 then insert ~mult:m t tuple else delete ~mult:(-m) t tuple)
    delta ()

let cardinal t = Bag.cardinal t.bag
let support_cardinal t = Bag.support_cardinal t.bag
let mem t tuple = Bag.mem t.bag tuple
let mult t tuple = Bag.mult t.bag tuple

let has_index_on t attrs = List.exists (fun ix -> ix.on = attrs) t.indexes

let lookup t attrs values =
  if List.length attrs <> List.length values then
    err "lookup: %d attributes but %d values" (List.length attrs)
      (List.length values);
  List.iter
    (fun a ->
      if not (Schema.mem t.schema a) then
        err "lookup: unknown attribute %S of table %s" a t.name)
    attrs;
  match List.find_opt (fun ix -> ix.on = attrs) t.indexes with
  | Some ix -> (
    Eval.charge_tuple_ops 1;
    match Key_table.find_opt ix.entries values with
    | None -> Bag.empty t.schema
    | Some cell ->
      Tuple.Map.fold
        (fun tuple m acc -> Bag.add ~mult:m acc tuple)
        !cell (Bag.empty t.schema))
  | None ->
    Eval.charge_tuple_ops (Bag.support_cardinal t.bag);
    let pred =
      Predicate.conj
        (List.map2
           (fun a v -> Predicate.eq (Predicate.attr a) (Predicate.Const v))
           attrs values)
    in
    Bag.select pred t.bag

let bytes_estimate t =
  Bag.cardinal t.bag * Schema.arity t.schema * 8

let pp fmt t = Format.fprintf fmt "table %s = %a" t.name Bag.pp t.bag

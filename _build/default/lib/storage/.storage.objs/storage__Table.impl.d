lib/storage/table.ml: Bag Delta Eval Format Hashtbl List Predicate Rel_delta Relalg Schema Tuple Value

lib/storage/store.ml: Delta Format Hashtbl List Option Rel_delta String Table

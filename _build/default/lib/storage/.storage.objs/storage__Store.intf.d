lib/storage/store.mli: Bag Delta Format Rel_delta Relalg Schema Table

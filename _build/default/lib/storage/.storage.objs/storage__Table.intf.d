lib/storage/table.mli: Bag Delta Format Rel_delta Relalg Schema Tuple Value

(** Ordered, delayed, reliable message channels.

    Sec. 4's correctness argument assumes "the messages transferred
    from one source database to the mediator must be in order": a
    channel delivers messages FIFO, each after (at least) the channel's
    delay — a later message is never delivered before an earlier one
    even if delays would allow it. One channel models one direction of
    one source-to-mediator link. *)

type 'a t

val create : Engine.t -> delay:float -> ('a -> unit) -> 'a t
(** [create engine ~delay handler]: messages are delivered by invoking
    [handler] (as a plain event, not a process) after [delay],
    preserving send order. *)

val send : 'a t -> 'a -> unit

val delay : 'a t -> float
val sent_count : 'a t -> int
val delivered_count : 'a t -> int

val in_flight : 'a t -> int

type 'a t = {
  engine : Engine.t;
  delay : float;
  handler : 'a -> unit;
  mutable last_delivery : float;
  mutable sent : int;
  mutable delivered : int;
}

let create engine ~delay handler =
  if delay < 0.0 then invalid_arg "Channel.create: negative delay";
  { engine; delay; handler; last_delivery = neg_infinity; sent = 0; delivered = 0 }

let send t msg =
  t.sent <- t.sent + 1;
  let arrival =
    Float.max (Engine.now t.engine +. t.delay) t.last_delivery
  in
  t.last_delivery <- arrival;
  Engine.schedule_at t.engine ~time:arrival (fun () ->
      t.delivered <- t.delivered + 1;
      t.handler msg)

let delay t = t.delay
let sent_count t = t.sent
let delivered_count t = t.delivered
let in_flight t = t.sent - t.delivered

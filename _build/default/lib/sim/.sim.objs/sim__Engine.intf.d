lib/sim/engine.mli:

lib/sim/engine.ml: Effect Float Int List Map Printf Queue

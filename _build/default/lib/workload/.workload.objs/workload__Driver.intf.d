lib/workload/driver.mli: Bag Datagen Delta Mediator Multi_delta Predicate Random Relalg Source_db Sources Squirrel Tuple

lib/workload/scenario.mli: Annotation Datagen Engine Graph Med Mediator Relalg Sim Source_db Sources Squirrel Vdp

lib/workload/scenario.ml: Annotation Bag Builder Datagen Engine Expr Fun Graph List Med Mediator Predicate Relalg Schema Sim Source_db Sources Squirrel String Tuple Value Vdp

lib/workload/datagen.mli: Bag Random Relalg Schema Tuple

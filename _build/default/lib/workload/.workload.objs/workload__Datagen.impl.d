lib/workload/datagen.ml: Bag List Random Relalg Schema Tuple Value

lib/workload/driver.ml: Bag Datagen Delta Engine List Med Mediator Multi_delta Predicate Random Rel_delta Relalg Schema Sim Source_db Sources Squirrel Tuple

open Relalg

let state seed = Random.State.make [| seed; 0x5317; seed * 7919 |]

type column_spec = { c_attr : string; c_min : int; c_max : int }

let uniform_specs schema ~lo ~hi =
  List.map
    (fun (a, _) -> { c_attr = a; c_min = lo; c_max = hi })
    (Schema.typed_attrs schema)

let draw rng spec =
  Value.Int (spec.c_min + Random.State.int rng (spec.c_max - spec.c_min + 1))

let tuple rng specs =
  Tuple.of_list (List.map (fun s -> (s.c_attr, draw rng s)) specs)

let keyed_tuple rng schema specs ~key_seed =
  let key = Schema.key schema in
  Tuple.of_list
    (List.map
       (fun s ->
         if List.mem s.c_attr key then (s.c_attr, Value.Int key_seed)
         else (s.c_attr, draw rng s))
       specs)

let bag rng schema specs ~size =
  let rec build acc i =
    if i >= size then acc
    else
      let t =
        if Schema.has_key schema then keyed_tuple rng schema specs ~key_seed:i
        else tuple rng specs
      in
      build (Bag.add acc t) (i + 1)
  in
  build (Bag.empty schema) 0

let pick rng = function
  | [] -> None
  | l -> Some (List.nth l (Random.State.int rng (List.length l)))

(** Deterministic synthetic data generation.

    All generators take an explicit [Random.State.t] so every
    experiment is reproducible from its seed. *)

open Relalg

val state : int -> Random.State.t
(** Fresh PRNG from a seed. *)

type column_spec = {
  c_attr : string;
  c_min : int;
  c_max : int;  (** inclusive; values drawn uniformly *)
}

val uniform_specs : Schema.t -> lo:int -> hi:int -> column_spec list

val tuple : Random.State.t -> column_spec list -> Tuple.t

val keyed_tuple :
  Random.State.t -> Schema.t -> column_spec list -> key_seed:int -> Tuple.t
(** A tuple whose key attributes are derived deterministically from
    [key_seed] (so successive seeds give distinct keys) and whose
    other columns are random. *)

val bag : Random.State.t -> Schema.t -> column_spec list -> size:int -> Bag.t
(** [size] tuples; when the schema has a key, keys are 0..size-1 so
    the bag is a valid keyed set. *)

val pick : Random.State.t -> 'a list -> 'a option
(** Uniform choice; [None] on an empty list. *)

(** Deltas spanning several relations.

    A delta "can simultaneously contain atoms that refer to more than
    one relation" (Sec. 6.2); the update queue of a mediator holds
    multi-relation deltas and the IUP smashes the whole queue into a
    single one before propagation. *)

open Relalg

type t

val empty : t
val is_empty : t -> bool

val singleton : string -> Rel_delta.t -> t
val add : t -> string -> Rel_delta.t -> t
(** [add d name rd] smashes [rd] onto the delta already recorded for
    relation [name]. *)

val find : t -> string -> Rel_delta.t option
val relations : t -> string list
val bindings : t -> (string * Rel_delta.t) list

val smash : t -> t -> t
val inverse : t -> t

val restrict : t -> string list -> t
(** Keep only the atoms of the listed relations. *)

val atom_count : t -> int

val apply_env :
  (string -> Bag.t option) -> t -> (string * Bag.t) list
(** Apply each per-relation delta to the corresponding bag from the
    environment; relations absent from the environment are skipped.
    Returns the updated (relation, bag) pairs. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Smap = Map.Make (String)

type t = Rel_delta.t Smap.t

let empty = Smap.empty

let is_empty t = Smap.for_all (fun _ d -> Rel_delta.is_empty d) t

let singleton name rd = Smap.singleton name rd

let add t name rd =
  Smap.update name
    (function None -> Some rd | Some d -> Some (Rel_delta.smash d rd))
    t

let find t name = Smap.find_opt name t
let relations t = List.map fst (Smap.bindings t)
let bindings t = Smap.bindings t

let smash a b = Smap.fold (fun name rd acc -> add acc name rd) b a

let inverse t = Smap.map Rel_delta.inverse t

let restrict t names = Smap.filter (fun name _ -> List.mem name names) t

let atom_count t =
  Smap.fold (fun _ d acc -> acc + Rel_delta.atom_count d) t 0

let apply_env env t =
  Smap.fold
    (fun name d acc ->
      match env name with
      | None -> acc
      | Some bag -> (name, Rel_delta.apply bag d) :: acc)
    t []

let equal a b = Smap.equal Rel_delta.equal a b

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt (name, d) ->
         Format.fprintf fmt "%s: %a" name Rel_delta.pp d))
    (Smap.bindings t)

let to_string t = Format.asprintf "%a" pp t

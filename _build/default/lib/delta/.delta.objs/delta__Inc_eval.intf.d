lib/delta/inc_eval.mli: Bag Expr Rel_delta Relalg

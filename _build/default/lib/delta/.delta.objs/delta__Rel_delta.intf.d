lib/delta/rel_delta.mli: Bag Format Predicate Relalg Schema Tuple

lib/delta/rel_delta.ml: Bag Expr Format Int List Predicate Relalg Schema Tuple

lib/delta/multi_delta.ml: Format List Map Rel_delta String

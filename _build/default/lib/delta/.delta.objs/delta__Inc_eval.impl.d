lib/delta/inc_eval.ml: Bag Eval Expr List Rel_delta Relalg String Tuple

lib/delta/multi_delta.mli: Bag Format Rel_delta Relalg

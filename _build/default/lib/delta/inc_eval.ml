open Relalg

(* Evaluate the pre-update value of a subexpression. In IUP use the
   expressions are node definitions over stored children, so [Base]
   lookups dominate and this is cheap. *)
let eval_old ~env e = Eval.eval ~env e

let schema_of ~env e =
  Expr.schema_of
    (fun n ->
      match env n with
      | Some bag -> Bag.schema bag
      | None -> raise (Eval.Unbound_relation n))
    e

let rec delta_of_expr ~env ~deltas expr =
  match expr with
  | Expr.Base name -> (
    match deltas name with
    | Some d -> d
    | None -> (
      match env name with
      | Some bag -> Rel_delta.empty (Bag.schema bag)
      | None -> raise (Eval.Unbound_relation name)))
  | Expr.Select (p, e) ->
    let d = delta_of_expr ~env ~deltas e in
    Eval.charge_tuple_ops (Rel_delta.support_cardinal d);
    Rel_delta.select p d
  | Expr.Project (names, e) ->
    let d = delta_of_expr ~env ~deltas e in
    Eval.charge_tuple_ops (Rel_delta.support_cardinal d);
    Rel_delta.project names d
  | Expr.Rename (mapping, e) ->
    let d = delta_of_expr ~env ~deltas e in
    Eval.charge_tuple_ops (Rel_delta.support_cardinal d);
    Rel_delta.rename mapping d
  | Expr.Join (a, p, b) ->
    let da = delta_of_expr ~env ~deltas a in
    let db = delta_of_expr ~env ~deltas b in
    (* evaluate only the sides a fired rule actually reads: when one
       side is unchanged, the other side's old value suffices *)
    if Rel_delta.is_empty da && Rel_delta.is_empty db then
      Rel_delta.empty (schema_of ~env expr)
    else if Rel_delta.is_empty db then begin
      let old_b = eval_old ~env b in
      let part = Rel_delta.join_bag ~on:p da old_b in
      Eval.charge_tuple_ops
        (Rel_delta.support_cardinal da + Rel_delta.support_cardinal part);
      part
    end
    else if Rel_delta.is_empty da then begin
      let old_a = eval_old ~env a in
      let part = Rel_delta.bag_join ~on:p old_a db in
      Eval.charge_tuple_ops
        (Rel_delta.support_cardinal db + Rel_delta.support_cardinal part);
      part
    end
    else begin
      let old_a = eval_old ~env a and old_b = eval_old ~env b in
      let new_b = Rel_delta.apply old_b db in
      (* Example 6.1: ΔA ⋈ B_new covers ΔA ⋈ B and ΔA ⋈ ΔB; A_old ⋈ ΔB
         covers the rest. *)
      let part1 = Rel_delta.join_bag ~on:p da new_b in
      let part2 = Rel_delta.bag_join ~on:p old_a db in
      Eval.charge_tuple_ops
        (Rel_delta.support_cardinal da + Rel_delta.support_cardinal db
        + Rel_delta.support_cardinal part1
        + Rel_delta.support_cardinal part2);
      Rel_delta.smash part1 part2
    end
  | Expr.Union (a, b) ->
    let da = delta_of_expr ~env ~deltas a in
    let db = delta_of_expr ~env ~deltas b in
    Eval.charge_tuple_ops
      (Rel_delta.support_cardinal da + Rel_delta.support_cardinal db);
    Rel_delta.smash da db
  | Expr.Diff (a, b) ->
    let da = delta_of_expr ~env ~deltas a in
    let db = delta_of_expr ~env ~deltas b in
    if Rel_delta.is_empty da && Rel_delta.is_empty db then
      Rel_delta.empty (schema_of ~env expr)
    else begin
      let old_a = eval_old ~env a and old_b = eval_old ~env b in
      let schema = Bag.schema old_a in
      let new_a = Rel_delta.apply old_a da in
      let new_b = Rel_delta.apply old_b db in
      (* Only tuples whose bag multiplicity changed in a child can
         change set membership in the output. *)
      let candidates =
        Rel_delta.fold
          (fun t _ acc -> Tuple.Set.add t acc)
          da
          (Rel_delta.fold (fun t _ acc -> Tuple.Set.add t acc) db
             Tuple.Set.empty)
      in
      Eval.charge_tuple_ops (Tuple.Set.cardinal candidates);
      Tuple.Set.fold
        (fun t acc ->
          let before = Bag.mem old_a t && not (Bag.mem old_b t) in
          let after = Bag.mem new_a t && not (Bag.mem new_b t) in
          match before, after with
          | false, true -> Rel_delta.insert acc t
          | true, false -> Rel_delta.delete acc t
          | true, true | false, false -> acc)
        candidates (Rel_delta.empty schema)
    end

let eval_new ~env ~deltas expr =
  let old_value = Eval.eval ~env expr in
  let d = delta_of_expr ~env ~deltas expr in
  Rel_delta.apply old_value d

let rec affected ~changed = function
  | Expr.Base n -> changed n
  | Expr.Select (_, e) | Expr.Project (_, e) | Expr.Rename (_, e) ->
    affected ~changed e
  | Expr.Join (a, _, b) | Expr.Union (a, b) | Expr.Diff (a, b) ->
    affected ~changed a || affected ~changed b

let value_bases ~changed expr =
  let rec delta_needs = function
    | Expr.Base _ -> []
    | Expr.Select (_, e) | Expr.Project (_, e) | Expr.Rename (_, e) ->
      delta_needs e
    | Expr.Join (a, _, b) -> (
      match (affected ~changed a, affected ~changed b) with
      | false, false -> []
      | true, false -> delta_needs a @ Expr.base_names b
      | false, true -> Expr.base_names a @ delta_needs b
      | true, true -> Expr.base_names a @ Expr.base_names b)
    | Expr.Union (a, b) -> delta_needs a @ delta_needs b
    | Expr.Diff (a, b) ->
      if affected ~changed a || affected ~changed b then
        Expr.base_names a @ Expr.base_names b
      else []
  in
  List.sort_uniq String.compare (delta_needs expr)

open Relalg

type t = { schema : Schema.t; muls : int Tuple.Map.t }
(* invariant: all stored multiplicities are nonzero *)

exception Delta_error of string

let err fmt = Format.kasprintf (fun s -> raise (Delta_error s)) fmt

let empty schema = { schema; muls = Tuple.Map.empty }
let schema d = d.schema
let is_empty d = Tuple.Map.is_empty d.muls

let add_signed d tuple mult =
  if mult = 0 then d
  else
    let muls =
      Tuple.Map.update tuple
        (function
          | None -> Some mult
          | Some m -> if m + mult = 0 then None else Some (m + mult))
        d.muls
    in
    { d with muls }

let insert ?(mult = 1) d tuple =
  if mult <= 0 then err "insert: multiplicity %d must be positive" mult;
  add_signed d tuple mult

let delete ?(mult = 1) d tuple =
  if mult <= 0 then err "delete: multiplicity %d must be positive" mult;
  add_signed d tuple (-mult)

let of_bags ~ins ~del =
  if not (Schema.union_compatible (Bag.schema ins) (Bag.schema del)) then
    err "of_bags: incompatible schemas";
  let d = empty (Bag.schema ins) in
  let d = Bag.fold (fun t m acc -> add_signed acc t m) ins d in
  Bag.fold (fun t m acc -> add_signed acc t (-m)) del d

let of_diff ~old_bag ~new_bag =
  of_bags ~ins:(Bag.monus new_bag old_bag) ~del:(Bag.monus old_bag new_bag)

let insertions d =
  Tuple.Map.fold
    (fun t m acc -> if m > 0 then Bag.add ~mult:m acc t else acc)
    d.muls (Bag.empty d.schema)

let deletions d =
  Tuple.Map.fold
    (fun t m acc -> if m < 0 then Bag.add ~mult:(-m) acc t else acc)
    d.muls (Bag.empty d.schema)

let signed_mult d tuple =
  match Tuple.Map.find_opt tuple d.muls with Some m -> m | None -> 0

let atom_count d = Tuple.Map.fold (fun _ m acc -> acc + abs m) d.muls 0
let support_cardinal d = Tuple.Map.cardinal d.muls

let apply ?(strict = false) bag d =
  Tuple.Map.fold
    (fun tuple m bag ->
      if m > 0 then begin
        if strict && Schema.key (Bag.schema bag) <> [] && Bag.mem bag tuple
        then err "apply: redundant insertion of %s" (Tuple.to_string tuple);
        Bag.add ~mult:m bag tuple
      end
      else begin
        if strict && Bag.mult bag tuple < -m then
          err "apply: redundant deletion of %s (mult %d, deleting %d)"
            (Tuple.to_string tuple) (Bag.mult bag tuple) (-m);
        Bag.remove ~mult:(-m) bag tuple
      end)
    d.muls bag

let smash d1 d2 =
  Tuple.Map.fold (fun t m acc -> add_signed acc t m) d2.muls d1

let inverse d = { d with muls = Tuple.Map.map (fun m -> -m) d.muls }

let select p d =
  { d with muls = Tuple.Map.filter (fun t _ -> Predicate.eval p t) d.muls }

let project names d =
  let schema = Schema.project d.schema names in
  Tuple.Map.fold
    (fun tuple m acc -> add_signed acc (Tuple.project tuple names) m)
    d.muls (empty schema)

let rename mapping d =
  let schema =
    Expr.schema_of
      (fun _ -> d.schema)
      (Expr.Rename (mapping, Expr.Base "_"))
  in
  let rename_tuple tuple =
    Tuple.of_list
      (List.map
         (fun (a, v) ->
           match List.assoc_opt a mapping with
           | Some b -> (b, v)
           | None -> (a, v))
         (Tuple.to_list tuple))
  in
  Tuple.Map.fold
    (fun tuple m acc -> add_signed acc (rename_tuple tuple) m)
    d.muls (empty schema)

let split_join join_fn d =
  let ins = join_fn (insertions d) in
  let del = join_fn (deletions d) in
  of_bags ~ins ~del

let join_bag ?on d bag = split_join (fun side -> Bag.join ?on side bag) d
let bag_join ?on bag d = split_join (fun side -> Bag.join ?on bag side) d

let fold f d init = Tuple.Map.fold f d.muls init

let equal a b =
  Schema.union_compatible a.schema b.schema
  && Tuple.Map.equal Int.equal a.muls b.muls

let pp fmt d =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt (t, m) ->
         Format.fprintf fmt "%s%d*%a" (if m > 0 then "+" else "-") (abs m)
           Tuple.pp t))
    (Tuple.Map.bindings d.muls)

let to_string d = Format.asprintf "%a" pp d

open Vdp

let virtual_all vdp = Annotation.fully_virtual vdp

let warehouse vdp =
  let per_node =
    List.filter_map
      (fun node ->
        match node.Graph.kind with
        | Graph.Leaf _ -> None
        | Graph.Derived _ ->
          let mark = if node.Graph.export then Annotation.M else Annotation.V in
          Some
            ( node.Graph.name,
              List.map
                (fun a -> (a, mark))
                (Relalg.Schema.attrs node.Graph.schema) ))
      (Graph.nodes vdp)
  in
  Annotation.of_list vdp per_node

let materialize_all vdp = Annotation.fully_materialized vdp

lib/baselines/query_shipper.ml: Bag Engine Eval Expr Graph Hashtbl List Message Option Predicate Printf Relalg Schema Sim Source_db Sources Vdp

lib/baselines/annotations.ml: Annotation Graph List Relalg Vdp

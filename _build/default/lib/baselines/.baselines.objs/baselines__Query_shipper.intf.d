lib/baselines/query_shipper.mli: Bag Engine Graph Predicate Relalg Sim Source_db Sources Vdp

lib/baselines/annotations.mli: Annotation Graph Vdp

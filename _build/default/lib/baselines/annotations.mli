(** The two classical approaches, expressed as Squirrel annotations.

    The paper's point is that the traditional virtual approach and the
    ZGHW95-style materialized warehouse are the two extreme points of
    the annotation space; these helpers pin those points so that
    experiments can run all three (virtual / warehouse / hybrid) on
    the same VDP and machinery. *)

open Vdp

val virtual_all : Graph.t -> Annotation.t
(** Everything virtual: queries always decompose down to the sources
    (equivalent in behaviour to {!Query_shipper}, with the VDP's
    structure reused for the decomposition). *)

val warehouse : Graph.t -> Annotation.t
(** The [ZGHW95] warehouse configuration: every export relation fully
    materialized, every auxiliary (non-export) relation fully virtual
    — so incremental maintenance polls the sources and relies on the
    Eager Compensation Algorithm, exactly the setting that paper
    studied for a single source and that Example 2.2 generalizes. *)

val materialize_all : Graph.t -> Annotation.t
(** Self-maintaining configuration: everything materialized, updates
    never trigger polling (Example 2.1). *)

lib/source/source_db.ml: Bag Channel Delta Engine Eval Format List Message Multi_delta Option Predicate Rel_delta Relalg Schema Sim

lib/source/message.ml: Bag Delta Engine Format List Multi_delta Relalg Sim

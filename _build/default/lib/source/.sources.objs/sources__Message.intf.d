lib/source/message.mli: Bag Delta Engine Format Multi_delta Relalg Sim

lib/source/source_db.mli: Bag Delta Engine Expr Message Multi_delta Predicate Relalg Schema Sim

lib/correctness/checker.ml: Bag Eval Float Format Graph Hashtbl List Med Printf Relalg Source_db Sources Squirrel Vdp

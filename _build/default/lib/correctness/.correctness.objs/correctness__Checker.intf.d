lib/correctness/checker.mli: Bag Graph Med Relalg Source_db Sources Squirrel Vdp

(* Tests for the Heraclitus delta machinery (Sec. 6.2) and the
   incremental expression evaluation behind the Sec. 5.2 rules. *)

open Relalg
open Delta
open Tutil

(* --- basic construction and apply --- *)

let test_insert_delete_cancel () =
  let d = Rel_delta.insert (Rel_delta.empty schema_s) (s_tuple 1 2 3) in
  let d = Rel_delta.delete d (s_tuple 1 2 3) in
  Alcotest.(check bool)
    "insert then delete cancels (consistency condition)" true
    (Rel_delta.is_empty d)

let test_apply_basic () =
  let b = Bag.of_tuples schema_s [ s_tuple 1 2 3; s_tuple 4 5 6 ] in
  let d =
    Rel_delta.insert
      (Rel_delta.delete (Rel_delta.empty schema_s) (s_tuple 1 2 3))
      (s_tuple 7 8 9)
  in
  let b' = Rel_delta.apply b d in
  Alcotest.(check bool) "deleted gone" false (Bag.mem b' (s_tuple 1 2 3));
  Alcotest.(check bool) "inserted present" true (Bag.mem b' (s_tuple 7 8 9));
  Alcotest.(check int) "cardinality" 2 (Bag.cardinal b')

let test_apply_strict_redundant () =
  let b = Bag.of_tuples schema_s [ s_tuple 1 2 3 ] in
  let d = Rel_delta.delete (Rel_delta.empty schema_s) (s_tuple 7 8 9) in
  (* non-strict clamps silently *)
  Alcotest.(check int) "clamped" 1 (Bag.cardinal (Rel_delta.apply b d));
  (* strict detects the redundant deletion *)
  try
    ignore (Rel_delta.apply ~strict:true b d);
    Alcotest.fail "expected Delta_error"
  with Rel_delta.Delta_error _ -> ()

let test_of_diff () =
  let old_bag = Bag.of_tuples schema_s [ s_tuple 1 2 3; s_tuple 4 5 6 ] in
  let new_bag = Bag.of_tuples schema_s [ s_tuple 4 5 6; s_tuple 7 8 9 ] in
  let d = Rel_delta.of_diff ~old_bag ~new_bag in
  check_bag "of_diff reconstructs" new_bag (Rel_delta.apply old_bag d);
  Alcotest.(check int) "two atoms" 2 (Rel_delta.atom_count d)

let test_atom_count () =
  let d =
    Rel_delta.insert ~mult:3
      (Rel_delta.delete ~mult:2 (Rel_delta.empty schema_s) (s_tuple 1 1 1))
      (s_tuple 2 2 2)
  in
  Alcotest.(check int) "atoms weighted by multiplicity" 5 (Rel_delta.atom_count d)

(* --- smash / inverse laws (qcheck) --- *)

let bag_and_two_deltas =
  let open QCheck2.Gen in
  bag_gen schema_s >>= fun b ->
  delta_gen_for schema_s b >>= fun d1 ->
  let b1 = Rel_delta.apply b d1 in
  delta_gen_for schema_s b1 >|= fun d2 -> (b, d1, d2)

let prop_smash_law =
  qtest "apply db (d1 ! d2) = apply (apply db d1) d2" bag_and_two_deltas
    (fun (b, d1, d2) ->
      Bag.equal
        (Rel_delta.apply b (Rel_delta.smash d1 d2))
        (Rel_delta.apply (Rel_delta.apply b d1) d2))

let bag_and_delta =
  let open QCheck2.Gen in
  bag_gen schema_s >>= fun b ->
  delta_gen_for schema_s b >|= fun d -> (b, d)

let prop_inverse_law =
  qtest "apply (apply db d) (inverse d) = db" bag_and_delta (fun (b, d) ->
      Bag.equal (Rel_delta.apply (Rel_delta.apply b d) (Rel_delta.inverse d)) b)

let prop_inverse_of_smash =
  qtest "(d1 ! d2)^-1 = d2^-1 ! d1^-1" bag_and_two_deltas (fun (_, d1, d2) ->
      Rel_delta.equal
        (Rel_delta.inverse (Rel_delta.smash d1 d2))
        (Rel_delta.smash (Rel_delta.inverse d2) (Rel_delta.inverse d1)))

let prop_select_commutes =
  qtest "select commutes with apply" bag_and_delta (fun (b, d) ->
      let p = cond_s3 in
      Bag.equal
        (Bag.select p (Rel_delta.apply b d))
        (Rel_delta.apply (Bag.select p b) (Rel_delta.select p d)))

let prop_project_commutes =
  qtest "project commutes with apply" bag_and_delta (fun (b, d) ->
      let names = [ "s1"; "s2" ] in
      Bag.equal
        (Bag.project names (Rel_delta.apply b d))
        (Rel_delta.apply (Bag.project names b) (Rel_delta.project names d)))

let prop_rename_commutes =
  qtest "rename commutes with apply" bag_and_delta (fun (b, d) ->
      let mapping = [ ("s1", "id"); ("s3", "flag") ] in
      let rename_bag bag =
        Eval.eval
          ~env:(function "X" -> Some bag | _ -> None)
          (Expr.Rename (mapping, Expr.Base "X"))
      in
      Bag.equal
        (rename_bag (Rel_delta.apply b d))
        (Rel_delta.apply (rename_bag b) (Rel_delta.rename mapping d)))

(* --- multi-relation deltas --- *)

let test_multi_delta_basic () =
  let dr = Rel_delta.insert (Rel_delta.empty schema_r) (r_tuple 1 2 3 4) in
  let ds = Rel_delta.delete (Rel_delta.empty schema_s) (s_tuple 1 2 3) in
  let m = Multi_delta.add (Multi_delta.singleton "R" dr) "S" ds in
  Alcotest.(check (list string)) "relations" [ "R"; "S" ] (Multi_delta.relations m);
  Alcotest.(check int) "atoms" 2 (Multi_delta.atom_count m);
  check_delta "find R" dr (Option.get (Multi_delta.find m "R"));
  let restricted = Multi_delta.restrict m [ "S" ] in
  Alcotest.(check (list string)) "restricted" [ "S" ] (Multi_delta.relations restricted)

let test_multi_delta_smash_per_relation () =
  let d1 = Rel_delta.insert (Rel_delta.empty schema_s) (s_tuple 1 2 3) in
  let d2 = Rel_delta.delete (Rel_delta.empty schema_s) (s_tuple 1 2 3) in
  let m = Multi_delta.smash (Multi_delta.singleton "S" d1) (Multi_delta.singleton "S" d2) in
  Alcotest.(check bool) "cancelled" true (Multi_delta.is_empty m)

let test_multi_delta_apply_env () =
  let b = Bag.of_tuples schema_s [ s_tuple 1 2 3 ] in
  let d = Rel_delta.insert (Rel_delta.empty schema_s) (s_tuple 4 5 6) in
  let m = Multi_delta.singleton "S" d in
  match Multi_delta.apply_env (function "S" -> Some b | _ -> None) m with
  | [ ("S", b') ] -> Alcotest.(check int) "applied" 2 (Bag.cardinal b')
  | _ -> Alcotest.fail "expected single updated relation"

(* --- incremental evaluation --- *)

let apply_multi env (m : (string * Rel_delta.t) list) name =
  match (env name, List.assoc_opt name m) with
  | Some b, Some d -> Some (Rel_delta.apply b d)
  | Some b, None -> Some b
  | None, _ -> None

(* the central correctness property: incremental = recompute *)
let check_incremental expr env delta_list =
  let deltas name = List.assoc_opt name delta_list in
  let old_value = Eval.eval ~env expr in
  let d = Inc_eval.delta_of_expr ~env ~deltas expr in
  let incremental = Rel_delta.apply old_value d in
  let recomputed = Eval.eval ~env:(apply_multi env delta_list) expr in
  Bag.equal incremental recomputed

let test_inc_spj_single_child () =
  (* rule #1 of Example 2.1: change to R only *)
  let dr =
    Rel_delta.insert (Rel_delta.empty schema_r) (r_tuple 5 10 11 100)
  in
  Alcotest.(check bool)
    "incremental matches recompute" true
    (check_incremental t_def
       (function "R" -> Some sample_r | "S" -> Some sample_s | _ -> None)
       [ ("R", dr) ])

let test_inc_spj_both_children () =
  (* Example 6.1: both children change simultaneously; the naive
     (R |X| dS) u (dR |X| S) combination would miss dR |X| dS *)
  let dr =
    Rel_delta.insert (Rel_delta.empty schema_r) (r_tuple 5 77 11 100)
  in
  let ds = Rel_delta.insert (Rel_delta.empty schema_s) (s_tuple 77 1 2) in
  let env = function
    | "R" -> Some sample_r
    | "S" -> Some sample_s
    | _ -> None
  in
  Alcotest.(check bool)
    "cross term covered" true
    (check_incremental t_def env [ ("R", dr); ("S", ds) ]);
  (* and the new tuple really is the cross term *)
  let d =
    Inc_eval.delta_of_expr ~env
      ~deltas:(function "R" -> Some dr | "S" -> Some ds | _ -> None)
      t_def
  in
  let expected =
    Tuple.of_list
      [ ("r1", v_int 5); ("r3", v_int 11); ("s1", v_int 77); ("s2", v_int 1) ]
  in
  Alcotest.(check int) "cross tuple inserted" 1 (Rel_delta.signed_mult d expected)

let test_inc_deletion_propagates () =
  let dr = Rel_delta.delete (Rel_delta.empty schema_r) (r_tuple 1 10 7 100) in
  let env = function
    | "R" -> Some sample_r
    | "S" -> Some sample_s
    | _ -> None
  in
  let deltas = function "R" -> Some dr | _ -> None in
  let d = Inc_eval.delta_of_expr ~env ~deltas t_def in
  let gone =
    Tuple.of_list
      [ ("r1", v_int 1); ("r3", v_int 7); ("s1", v_int 10); ("s2", v_int 55) ]
  in
  Alcotest.(check int) "join tuple deleted" (-1) (Rel_delta.signed_mult d gone)

let test_inc_irrelevant_update () =
  (* update filtered out by the selection produces an empty delta *)
  let dr = Rel_delta.insert (Rel_delta.empty schema_r) (r_tuple 9 10 1 999) in
  let env = function
    | "R" -> Some sample_r
    | "S" -> Some sample_s
    | _ -> None
  in
  let d =
    Inc_eval.delta_of_expr ~env
      ~deltas:(function "R" -> Some dr | _ -> None)
      t_def
  in
  Alcotest.(check bool) "filtered" true (Rel_delta.is_empty d)

let diff_schema = Schema.make [ ("x", Value.TInt) ]
let mk_x rows = Bag.of_rows diff_schema (List.map (fun i -> [ v_int i ]) rows)
let x_tuple i = Tuple.of_list [ ("x", v_int i) ]

let test_inc_diff_corrected_rule () =
  (* The paper's diff1 rule has a typo; the corrected rule: deleting a
     tuple from R1 removes it from T only when it is NOT in R2. *)
  let a = mk_x [ 1; 2 ] and b = mk_x [ 2 ] in
  let env = function "A" -> Some a | "B" -> Some b | _ -> None in
  let expr = Expr.diff (Expr.base "A") (Expr.base "B") in
  (* delete 2 from A: 2 was not in T (blocked by B), so no change *)
  let d_del2 = Rel_delta.delete (Rel_delta.empty diff_schema) (x_tuple 2) in
  let d =
    Inc_eval.delta_of_expr ~env
      ~deltas:(function "A" -> Some d_del2 | _ -> None)
      expr
  in
  Alcotest.(check bool)
    "deleting a blocked tuple is a no-op (paper's published rule would \
     wrongly emit a deletion)"
    true (Rel_delta.is_empty d);
  (* delete 1 from A: 1 was in T, so it leaves *)
  let d_del1 = Rel_delta.delete (Rel_delta.empty diff_schema) (x_tuple 1) in
  let d =
    Inc_eval.delta_of_expr ~env
      ~deltas:(function "A" -> Some d_del1 | _ -> None)
      expr
  in
  Alcotest.(check int) "unblocked tuple leaves" (-1) (Rel_delta.signed_mult d (x_tuple 1))

let test_inc_diff_rule2 () =
  (* rule diff2: inserting into R2 removes from T; deleting from R2
     reveals tuples of R1 *)
  let a = mk_x [ 1; 2 ] and b = mk_x [ 2 ] in
  let env = function "A" -> Some a | "B" -> Some b | _ -> None in
  let expr = Expr.diff (Expr.base "A") (Expr.base "B") in
  let ins1 = Rel_delta.insert (Rel_delta.empty diff_schema) (x_tuple 1) in
  let d =
    Inc_eval.delta_of_expr ~env
      ~deltas:(function "B" -> Some ins1 | _ -> None)
      expr
  in
  Alcotest.(check int) "insert into B hides 1" (-1) (Rel_delta.signed_mult d (x_tuple 1));
  let del2 = Rel_delta.delete (Rel_delta.empty diff_schema) (x_tuple 2) in
  let d =
    Inc_eval.delta_of_expr ~env
      ~deltas:(function "B" -> Some del2 | _ -> None)
      expr
  in
  Alcotest.(check int) "delete from B reveals 2" 1 (Rel_delta.signed_mult d (x_tuple 2))

let test_inc_diff_multiplicity_boundary () =
  (* bag child: set membership changes only when multiplicity crosses 0 *)
  let a = Bag.add ~mult:2 (Bag.empty diff_schema) (x_tuple 1) in
  let b = Bag.empty diff_schema in
  let env = function "A" -> Some a | "B" -> Some b | _ -> None in
  let expr = Expr.diff (Expr.base "A") (Expr.base "B") in
  let del_one = Rel_delta.delete (Rel_delta.empty diff_schema) (x_tuple 1) in
  let d =
    Inc_eval.delta_of_expr ~env
      ~deltas:(function "A" -> Some del_one | _ -> None)
      expr
  in
  Alcotest.(check bool)
    "mult 2 -> 1 keeps membership" true (Rel_delta.is_empty d);
  let del_two = Rel_delta.delete ~mult:2 (Rel_delta.empty diff_schema) (x_tuple 1) in
  let d =
    Inc_eval.delta_of_expr ~env
      ~deltas:(function "A" -> Some del_two | _ -> None)
      expr
  in
  Alcotest.(check int) "mult 2 -> 0 leaves" (-1) (Rel_delta.signed_mult d (x_tuple 1))

let test_inc_union () =
  let a = mk_x [ 1 ] and b = mk_x [ 1; 2 ] in
  let env = function "A" -> Some a | "B" -> Some b | _ -> None in
  let expr = Expr.union (Expr.base "A") (Expr.base "B") in
  let ins = Rel_delta.insert (Rel_delta.empty diff_schema) (x_tuple 1) in
  let d =
    Inc_eval.delta_of_expr ~env
      ~deltas:(function "A" -> Some ins | _ -> None)
      expr
  in
  Alcotest.(check int) "bag union adds multiplicity" 1 (Rel_delta.signed_mult d (x_tuple 1))

(* property: random deltas on both children of the Example 2.1 SPJ view *)
let rs_deltas_gen =
  let open QCheck2.Gen in
  bag_gen schema_r >>= fun r ->
  bag_gen schema_s >>= fun s ->
  delta_gen_for schema_r r >>= fun dr ->
  delta_gen_for schema_s s >|= fun ds -> (r, s, dr, ds)

let prop_inc_spj =
  qtest ~count:300 "SPJ incremental = recompute (random)" rs_deltas_gen
    (fun (r, s, dr, ds) ->
      check_incremental t_def
        (function "R" -> Some r | "S" -> Some s | _ -> None)
        [ ("R", dr); ("S", ds) ])

let xx_deltas_gen =
  let open QCheck2.Gen in
  bag_gen diff_schema >>= fun a ->
  bag_gen diff_schema >>= fun b ->
  delta_gen_for diff_schema a >>= fun da ->
  delta_gen_for diff_schema b >|= fun db -> (a, b, da, db)

let prop_inc_diff =
  qtest ~count:300 "difference incremental = recompute (random)" xx_deltas_gen
    (fun (a, b, da, db) ->
      check_incremental
        (Expr.diff (Expr.base "A") (Expr.base "B"))
        (function "A" -> Some a | "B" -> Some b | _ -> None)
        [ ("A", da); ("B", db) ])

let prop_inc_union =
  qtest ~count:300 "union incremental = recompute (random)" xx_deltas_gen
    (fun (a, b, da, db) ->
      check_incremental
        (Expr.union (Expr.base "A") (Expr.base "B"))
        (function "A" -> Some a | "B" -> Some b | _ -> None)
        [ ("A", da); ("B", db) ])

let prop_inc_nested =
  (* nested: difference over a join and a union *)
  let expr =
    Expr.(
      diff
        (project [ "s1" ] (select cond_s3 (base "A")))
        (project [ "s1" ] (base "B")))
  in
  qtest ~count:300 "nested setop incremental = recompute"
    (let open QCheck2.Gen in
     bag_gen schema_s >>= fun a ->
     bag_gen schema_s >>= fun b ->
     delta_gen_for schema_s a >>= fun da ->
     delta_gen_for schema_s b >|= fun db -> (a, b, da, db))
    (fun (a, b, da, db) ->
      check_incremental expr
        (function "A" -> Some a | "B" -> Some b | _ -> None)
        [ ("A", da); ("B", db) ])

(* --- random expressions over a shared attribute universe --------------- *)

(* three base relations over the same attributes {x, y, z}, so
   projection lists compose freely and union/difference operands can
   be made compatible by construction *)
let xyz_schema =
  Schema.make [ ("x", Value.TInt); ("y", Value.TInt); ("z", Value.TInt) ]

let xyz_bases = [ "A"; "B"; "C" ]

let gen_cond attrs =
  let open QCheck2.Gen in
  let attr_gen = oneofl attrs in
  let term =
    oneof
      [
        (attr_gen >|= fun a -> Predicate.Attr a);
        (small_int_gen >|= fun i -> Predicate.Const (Value.Int i));
      ]
  in
  let cmp =
    oneofl [ Predicate.Eq; Predicate.Ne; Predicate.Lt; Predicate.Le ]
  in
  map3 (fun op a b -> Predicate.Cmp (op, a, b)) cmp term term

(* returns (expr, output attrs) *)
let rec gen_expr depth =
  let open QCheck2.Gen in
  if depth = 0 then oneofl xyz_bases >|= fun b -> (Expr.Base b, [ "x"; "y"; "z" ])
  else
    let sub = gen_expr (depth - 1) in
    oneof
      [
        sub;
        ( sub >>= fun (e, attrs) ->
          gen_cond attrs >|= fun c -> (Expr.Select (c, e), attrs) );
        ( sub >>= fun (e, attrs) ->
          (* nonempty sublist *)
          oneofl attrs >>= fun keep1 ->
          sublist attrs >|= fun keeps ->
          let keep = List.sort_uniq String.compare (keep1 :: keeps) in
          (Expr.Project (keep, e), keep) );
        ( pair sub sub >|= fun ((e1, a1), (e2, a2)) ->
          let attrs = List.sort_uniq String.compare (a1 @ a2) in
          (Expr.Join (e1, Predicate.True, e2), attrs) );
        ( pair sub sub >>= fun ((e1, a1), (e2, a2)) ->
          let shared = List.filter (fun a -> List.mem a a2) a1 in
          if shared = [] then return (e1, a1)
            (* disjoint outputs: no compatible set operation *)
          else
            oneofl [ `U; `D ] >|= fun k ->
            let p1 = Expr.Project (shared, e1)
            and p2 = Expr.Project (shared, e2) in
            match k with
            | `U -> (Expr.Union (p1, p2), shared)
            | `D -> (Expr.Diff (p1, p2), shared) );
      ]

and sublist attrs =
  let open QCheck2.Gen in
  List.fold_left
    (fun acc a ->
      acc >>= fun l ->
      bool >|= fun keep -> if keep then a :: l else l)
    (return []) attrs

let xyz_env_gen =
  let open QCheck2.Gen in
  let bag = bag_gen ~max_size:8 xyz_schema in
  triple bag bag bag >>= fun (a, b, c) ->
  let d_for bag = delta_gen_for xyz_schema bag in
  triple (d_for a) (d_for b) (d_for c) >|= fun (da, db, dc) ->
  ([ ("A", a); ("B", b); ("C", c) ], [ ("A", da); ("B", db); ("C", dc) ])

let prop_inc_random_exprs =
  qtest ~count:500 "random expressions: incremental = recompute"
    QCheck2.Gen.(pair (gen_expr 3) xyz_env_gen)
    (fun ((expr, _attrs), (bags, deltas)) ->
      check_incremental expr
        (fun n -> List.assoc_opt n bags)
        deltas)

let () =
  Alcotest.run "delta"
    [
      ( "rel_delta",
        [
          Alcotest.test_case "insert/delete cancel" `Quick test_insert_delete_cancel;
          Alcotest.test_case "apply" `Quick test_apply_basic;
          Alcotest.test_case "strict redundancy" `Quick test_apply_strict_redundant;
          Alcotest.test_case "of_diff" `Quick test_of_diff;
          Alcotest.test_case "atom count" `Quick test_atom_count;
        ] );
      ( "delta laws",
        [
          prop_smash_law;
          prop_inverse_law;
          prop_inverse_of_smash;
          prop_select_commutes;
          prop_project_commutes;
          prop_rename_commutes;
        ] );
      ( "multi_delta",
        [
          Alcotest.test_case "basic" `Quick test_multi_delta_basic;
          Alcotest.test_case "smash per relation" `Quick test_multi_delta_smash_per_relation;
          Alcotest.test_case "apply_env" `Quick test_multi_delta_apply_env;
        ] );
      ( "incremental eval",
        [
          Alcotest.test_case "SPJ single child" `Quick test_inc_spj_single_child;
          Alcotest.test_case "Example 6.1 simultaneity" `Quick test_inc_spj_both_children;
          Alcotest.test_case "deletion propagates" `Quick test_inc_deletion_propagates;
          Alcotest.test_case "irrelevant update filtered" `Quick test_inc_irrelevant_update;
          Alcotest.test_case "difference: corrected diff1 rule" `Quick test_inc_diff_corrected_rule;
          Alcotest.test_case "difference: diff2 rule" `Quick test_inc_diff_rule2;
          Alcotest.test_case "difference: multiplicity boundary" `Quick test_inc_diff_multiplicity_boundary;
          Alcotest.test_case "union" `Quick test_inc_union;
        ] );
      ( "incremental properties",
        [
          prop_inc_spj;
          prop_inc_diff;
          prop_inc_union;
          prop_inc_nested;
          prop_inc_random_exprs;
        ] );
    ]

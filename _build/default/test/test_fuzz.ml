(* Annotation-space fuzzing: the paper's framework claims ANY
   per-attribute materialized/virtual annotation yields a correct
   mediator. We sample random annotations over the three scenario
   VDPs, run randomized update/query load (with same-batch cross
   commits where applicable), and require (a) every logged query to
   pass the Sec. 3 consistency checker and (b) final answers to equal
   recomputation over the true source states. *)

open Relalg
open Vdp
open Sim
open Sources
open Squirrel
open Correctness
open Workload

let in_process env f =
  let cell = ref None in
  Engine.spawn env.Scenario.engine (fun () -> cell := Some (f ()));
  let rec go n =
    match !cell with
    | Some v -> v
    | None ->
      if n > 100_000 then Alcotest.fail "no result";
      Engine.run env.Scenario.engine
        ~until:(Engine.now env.Scenario.engine +. 1.0);
      go (n + 1)
  in
  go 0

let recompute env node =
  let env_fn leaf =
    match Graph.node_opt env.Scenario.vdp leaf with
    | Some { Graph.kind = Graph.Leaf { source }; _ } ->
      Some (Source_db.current (Scenario.source env source) leaf)
    | Some _ | None -> None
  in
  Eval.eval ~env:env_fn (Graph.expanded_def env.Scenario.vdp node)

(* a uniformly random annotation over the VDP's non-leaf attributes *)
let random_annotation rng vdp =
  Annotation.of_list vdp
    (List.map
       (fun node ->
         ( node.Graph.name,
           List.map
             (fun a ->
               (a, if Random.State.bool rng then Annotation.M else Annotation.V))
             (Schema.attrs node.Graph.schema) ))
       (Graph.non_leaves vdp))

type fuzz_scenario = {
  f_name : string;
  f_make : int -> Source_db.announce_mode -> Scenario.env;
  f_rels : (string * string) list;
  f_specs : string -> Datagen.column_spec list;
  f_exports : string list;
}

let scenarios =
  [
    {
      f_name = "fig1";
      f_make = (fun seed announce -> Scenario.make_fig1 ~seed ~announce ());
      f_rels = [ ("db1", "R"); ("db2", "S") ];
      f_specs = Scenario.fig1_update_specs;
      f_exports = [ "T" ];
    };
    {
      f_name = "ex51";
      f_make = (fun seed announce -> Scenario.make_ex51 ~seed ~announce ());
      f_rels = [ ("dbA", "A"); ("dbB", "B"); ("dbC", "C"); ("dbD", "D") ];
      f_specs = Scenario.ex51_update_specs;
      f_exports = [ "E"; "G" ];
    };
    {
      f_name = "retail";
      f_make = (fun seed announce -> Scenario.make_retail ~seed ~announce ());
      f_rels = [ ("dbEast", "OrdersE"); ("dbWest", "OrdersW"); ("dbCust", "Cust") ];
      f_specs = Scenario.retail_update_specs;
      f_exports = [ "AllOrders"; "Premium" ];
    };
    {
      f_name = "federated";
      f_make = (fun seed announce -> Scenario.make_federated ~seed ~announce ());
      f_rels = [ ("dbEast", "OrdersE"); ("dbWest", "OrdersW") ];
      f_specs = Scenario.federated_update_specs;
      f_exports = [ "AllOrders" ];
    };
  ]

let fuzz_once ?(announce = Source_db.Immediate) sc ~seed ~filtering =
  let rng = Random.State.make [| seed; 0xF22 |] in
  let env = sc.f_make seed announce in
  let annotation = random_annotation rng env.Scenario.vdp in
  let med = Scenario.mediator env ~annotation () in
  if filtering then Mediator.enable_source_filtering med;
  in_process env (fun () -> Mediator.initialize med);
  let drv_rng = Datagen.state (seed * 7 + 1) in
  List.iter
    (fun (src_name, rel) ->
      Driver.update_process ~rng:drv_rng ~src:(Scenario.source env src_name)
        {
          Driver.u_relation = rel;
          u_interval = 0.17 +. (0.1 *. float_of_int (seed mod 3));
          u_count = 8;
          u_delete_fraction = 0.3;
          u_specs = sc.f_specs rel;
        })
    sc.f_rels;
  (* queries against every export while the churn runs *)
  List.iter
    (fun node ->
      let schema = (Graph.node env.Scenario.vdp node).Graph.schema in
      ignore
        (Driver.query_process ~rng:drv_rng ~med
           {
             Driver.q_node = node;
             q_interval = 0.61;
             q_count = 4;
             q_attr_sets = [ (Schema.attrs schema, Predicate.True) ];
           }))
    sc.f_exports;
  Scenario.run_to_quiescence env med;
  (* final answers vs ground truth, fetched in one multi-export
     transaction *)
  let answers =
    in_process env (fun () ->
        Mediator.query_many med
          (List.map (fun n -> (n, None, Predicate.True)) sc.f_exports))
  in
  List.iter
    (fun (node, answer) ->
      if not (Bag.equal answer (recompute env node)) then
        Alcotest.failf "%s seed %d (%s): final %s diverges from recompute"
          sc.f_name seed
          (Annotation.to_string annotation)
          node)
    answers;
  let report =
    Checker.check ~vdp:env.Scenario.vdp ~sources:env.Scenario.sources
      ~events:(Mediator.events med) ()
  in
  if not (Checker.consistent report) then
    Alcotest.failf "%s seed %d (%s): %s" sc.f_name seed
      (Annotation.to_string annotation)
      (String.concat "; "
         (List.map (fun v -> v.Checker.v_detail) report.Checker.violations))

let fuzz_case ?announce ?(label = "") sc ~filtering =
  Alcotest.test_case
    (Printf.sprintf "%s%s%s" sc.f_name
       (if filtering then " + filtering" else "")
       label)
    `Slow
    (fun () ->
      for seed = 1 to 8 do
        fuzz_once ?announce sc ~seed ~filtering
      done)

let () =
  Alcotest.run "fuzz"
    [
      ( "random annotations",
        List.map (fun sc -> fuzz_case sc ~filtering:false) scenarios );
      ( "random annotations + source filtering",
        List.map (fun sc -> fuzz_case sc ~filtering:true) scenarios );
      ( "random annotations + periodic announcements",
        List.map
          (fun sc ->
            fuzz_case ~announce:(Source_db.Periodic 0.9) ~label:" (periodic)"
              sc ~filtering:false)
          scenarios );
    ]

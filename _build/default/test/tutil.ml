(* Shared helpers for the test suites: schemas and relations of the
   paper's running examples, alcotest testables, qcheck generators. *)

open Relalg
open Delta

let v_int i = Value.Int i
let v_str s = Value.Str s

(* --- Example 2.1: R(r1,r2,r3,r4) key r1; S(s1,s2,s3) key s1;
       T = pi_{r1,r3,s1,s2}( sigma_{r4=100} R |X|_{r2=s1} sigma_{s3<50} S ) *)

let schema_r =
  Schema.make ~key:[ "r1" ]
    [ ("r1", Value.TInt); ("r2", Value.TInt); ("r3", Value.TInt); ("r4", Value.TInt) ]

let schema_s =
  Schema.make ~key:[ "s1" ]
    [ ("s1", Value.TInt); ("s2", Value.TInt); ("s3", Value.TInt) ]

let r_tuple r1 r2 r3 r4 =
  Tuple.of_list
    [ ("r1", v_int r1); ("r2", v_int r2); ("r3", v_int r3); ("r4", v_int r4) ]

let s_tuple s1 s2 s3 =
  Tuple.of_list [ ("s1", v_int s1); ("s2", v_int s2); ("s3", v_int s3) ]

let sample_r =
  Bag.of_tuples schema_r
    [
      r_tuple 1 10 7 100;
      r_tuple 2 20 8 100;
      r_tuple 3 10 9 100;
      r_tuple 4 30 6 200 (* filtered out by r4 = 100 *);
    ]

let sample_s =
  Bag.of_tuples schema_s
    [
      s_tuple 10 55 20;
      s_tuple 20 66 30;
      s_tuple 30 77 99 (* filtered out by s3 < 50 *);
    ]

let cond_r4 = Predicate.(eq (attr "r4") (int 100))
let cond_s3 = Predicate.(lt (attr "s3") (int 50))
let join_cond = Predicate.eq_attrs "r2" "s1"

let t_def =
  Expr.(
    project [ "r1"; "r3"; "s1"; "s2" ]
      (join ~on:join_cond (select cond_r4 (base "R")) (select cond_s3 (base "S"))))

(* --- alcotest testables --- *)

let bag = Alcotest.testable Bag.pp Bag.equal
let rel_delta = Alcotest.testable Rel_delta.pp Rel_delta.equal
let value = Alcotest.testable Value.pp Value.equal
let tuple = Alcotest.testable Tuple.pp Tuple.equal

let check_bag = Alcotest.check bag
let check_delta = Alcotest.check rel_delta

(* --- qcheck generators --- *)

(* Small integer domains keep collision (and hence join/diff overlap)
   probability high, which is what exercises the interesting paths. *)
let small_int_gen = QCheck2.Gen.int_range 0 6

let tuple_gen schema =
  let open QCheck2.Gen in
  let attrs = Schema.attrs schema in
  let rec build acc = function
    | [] -> return (Tuple.of_list acc)
    | a :: rest -> small_int_gen >>= fun v -> build ((a, v_int v) :: acc) rest
  in
  build [] attrs

let bag_gen ?(max_size = 12) schema =
  let open QCheck2.Gen in
  list_size (int_range 0 max_size) (tuple_gen schema)
  >|= fun tuples -> Bag.of_tuples schema tuples

(* a delta that is non-redundant w.r.t. [bag]: deletions are drawn from
   the bag's contents (with multiplicity <= present), insertions are
   arbitrary *)
let delta_gen_for schema bag =
  let open QCheck2.Gen in
  let support = Bag.support bag in
  let deletions_gen =
    match support with
    | [] -> return []
    | _ ->
      list_size (int_range 0 4) (oneofl support) >|= fun chosen ->
      (* clamp each tuple's total deletions to its multiplicity *)
      let seen = ref [] in
      let count t =
        List.length (List.filter (fun t' -> Tuple.equal t t') !seen)
      in
      List.filter
        (fun t ->
          if count t < Bag.mult bag t then begin
            seen := t :: !seen;
            true
          end
          else false)
        chosen
  in
  let insertions_gen = list_size (int_range 0 4) (tuple_gen schema) in
  pair deletions_gen insertions_gen >|= fun (dels, inss) ->
  let d = List.fold_left (fun d t -> Rel_delta.delete d t) (Rel_delta.empty schema) dels in
  List.fold_left (fun d t -> Rel_delta.insert d t) d inss

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

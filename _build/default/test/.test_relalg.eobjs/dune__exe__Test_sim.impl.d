test/test_sim.ml: Alcotest Channel Engine List Sim

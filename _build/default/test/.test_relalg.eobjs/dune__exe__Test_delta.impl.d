test/test_delta.ml: Alcotest Bag Delta Eval Expr Inc_eval List Multi_delta Option Predicate QCheck2 Rel_delta Relalg Schema String Tuple Tutil Value

test/test_internals.ml: Advisor Alcotest Annotation Channel Cost Engine List Med Mediator Option Predicate Printf Qp Relalg Scenario Sim Squirrel String Vap Vdp Workload

test/test_sources.ml: Alcotest Bag Delta Engine Expr List Message Multi_delta Predicate Rel_delta Relalg Sim Source_db Sources Tuple Tutil

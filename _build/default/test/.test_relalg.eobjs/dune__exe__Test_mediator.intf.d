test/test_mediator.mli:

test/test_correctness.ml: Alcotest Bag Builder Checker Correctness Delta Engine Expr List Med Multi_delta Predicate Rel_delta Relalg Schema Sim Source_db Sources Squirrel Tuple Value Vdp

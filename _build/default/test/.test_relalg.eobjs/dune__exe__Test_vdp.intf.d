test/test_vdp.mli:

test/test_relalg.ml: Alcotest Bag Eval Expr Fd List Option Predicate QCheck2 Relalg Schema Tuple Tutil Value

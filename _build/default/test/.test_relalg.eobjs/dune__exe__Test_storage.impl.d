test/test_storage.ml: Alcotest Bag Delta Option Rel_delta Relalg Storage Store Table Tuple Tutil Value

test/tutil.ml: Alcotest Bag Delta Expr List Predicate QCheck2 QCheck_alcotest Rel_delta Relalg Schema Tuple Value

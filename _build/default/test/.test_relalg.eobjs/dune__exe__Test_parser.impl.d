test/test_parser.ml: Alcotest Eval Expr Parser Predicate Relalg Tutil Value

test/test_correctness.mli:

(* Unit tests for the relational-algebra substrate. *)

open Relalg
open Tutil

(* --- Value --- *)

let test_value_compare () =
  Alcotest.(check bool) "int eq" true (Value.equal (v_int 3) (v_int 3));
  Alcotest.(check bool)
    "int/float numeric equality" true
    (Value.equal (v_int 3) (Value.Float 3.0));
  Alcotest.(check bool) "str lt" true (Value.lt (v_str "a") (v_str "b"));
  Alcotest.(check bool) "null never lt" false (Value.lt Value.Null (v_int 1));
  Alcotest.(check int) "ordering across types" (-1)
    (compare (Value.compare (Value.Bool true) (v_int 0)) 0)

let test_value_arith () =
  Alcotest.check value "int add" (v_int 7) (Value.add (v_int 3) (v_int 4));
  Alcotest.check value "promotion"
    (Value.Float 4.5)
    (Value.add (v_int 4) (Value.Float 0.5));
  Alcotest.check value "mul" (v_int 12) (Value.mul (v_int 3) (v_int 4));
  Alcotest.(check_raises) "string arith" (Value.Type_error
    "add: non-numeric operands (string, int)") (fun () ->
      ignore (Value.add (v_str "x") (v_int 1)))

let test_value_hash_consistency () =
  Alcotest.(check bool)
    "equal values share hash" true
    (Value.hash (v_int 5) = Value.hash (Value.Float 5.0))

(* --- Schema --- *)

let test_schema_basic () =
  Alcotest.(check (list string))
    "attrs in order"
    [ "r1"; "r2"; "r3"; "r4" ]
    (Schema.attrs schema_r);
  Alcotest.(check (list string)) "key" [ "r1" ] (Schema.key schema_r);
  Alcotest.(check bool) "mem" true (Schema.mem schema_r "r3");
  Alcotest.(check bool) "not mem" false (Schema.mem schema_r "zz")

let test_schema_project () =
  let p = Schema.project schema_r [ "r3"; "r1" ] in
  Alcotest.(check (list string)) "reordered" [ "r3"; "r1" ] (Schema.attrs p);
  Alcotest.(check (list string)) "key kept" [ "r1" ] (Schema.key p);
  let q = Schema.project schema_r [ "r2" ] in
  Alcotest.(check (list string)) "key dropped" [] (Schema.key q);
  Alcotest.check_raises "unknown attr"
    (Schema.Schema_error "project: unknown attribute \"zz\"") (fun () ->
      ignore (Schema.project schema_r [ "zz" ]))

let test_schema_dup () =
  Alcotest.check_raises "duplicate attribute"
    (Schema.Schema_error "duplicate attribute \"a\"") (fun () ->
      ignore (Schema.make [ ("a", Value.TInt); ("a", Value.TInt) ]))

let test_schema_join () =
  let j = Schema.join schema_r schema_s in
  Alcotest.(check (list string))
    "joined attrs"
    [ "r1"; "r2"; "r3"; "r4"; "s1"; "s2"; "s3" ]
    (Schema.attrs j);
  Alcotest.(check (list string)) "combined key" [ "r1"; "s1" ] (Schema.key j);
  (* shared attribute with agreeing type merges *)
  let a = Schema.make [ ("x", Value.TInt); ("y", Value.TInt) ] in
  let b = Schema.make [ ("y", Value.TInt); ("z", Value.TInt) ] in
  Alcotest.(check (list string))
    "shared merged" [ "x"; "y"; "z" ]
    (Schema.attrs (Schema.join a b));
  let b_bad = Schema.make [ ("y", Value.TStr) ] in
  Alcotest.check_raises "type conflict"
    (Schema.Schema_error "join: attribute \"y\" has conflicting types")
    (fun () -> ignore (Schema.join a b_bad))

let test_schema_union_compatible () =
  Alcotest.(check bool)
    "same schema" true
    (Schema.union_compatible schema_r schema_r);
  Alcotest.(check bool)
    "different" false
    (Schema.union_compatible schema_r schema_s)

(* --- Tuple --- *)

let test_tuple_basic () =
  let t = r_tuple 1 10 7 100 in
  Alcotest.check value "get" (v_int 10) (Tuple.get t "r2");
  Alcotest.(check (option value)) "find_opt none" None (Tuple.find_opt t "zz");
  Alcotest.(check int) "arity" 4 (Tuple.arity t);
  Alcotest.check tuple "project"
    (Tuple.of_list [ ("r1", v_int 1); ("r3", v_int 7) ])
    (Tuple.project t [ "r1"; "r3" ])

let test_tuple_concat () =
  let a = Tuple.of_list [ ("x", v_int 1); ("y", v_int 2) ] in
  let b = Tuple.of_list [ ("y", v_int 2); ("z", v_int 3) ] in
  (match Tuple.concat a b with
  | Some m -> Alcotest.(check int) "merged arity" 3 (Tuple.arity m)
  | None -> Alcotest.fail "concat should agree");
  let b_bad = Tuple.of_list [ ("y", v_int 9) ] in
  Alcotest.(check bool)
    "disagreement" true
    (Option.is_none (Tuple.concat a b_bad))

let test_tuple_schema_match () =
  Alcotest.(check bool)
    "matches" true
    (Tuple.matches_schema (r_tuple 1 2 3 4) schema_r);
  Alcotest.(check bool)
    "wrong arity" false
    (Tuple.matches_schema (s_tuple 1 2 3) schema_r);
  let wrong_ty =
    Tuple.of_list
      [ ("r1", v_str "x"); ("r2", v_int 0); ("r3", v_int 0); ("r4", v_int 0) ]
  in
  Alcotest.(check bool) "wrong type" false (Tuple.matches_schema wrong_ty schema_r)

(* --- Predicate --- *)

let test_predicate_eval () =
  let t = r_tuple 1 10 7 100 in
  Alcotest.(check bool) "eq true" true (Predicate.eval cond_r4 t);
  Alcotest.(check bool)
    "arith condition" true
    Predicate.(eval (lt (Add (attr "r1", attr "r3")) (int 9)) t);
  Alcotest.(check bool)
    "nonlinear condition (Example 5.1 style)" true
    Predicate.(
      eval (lt (Add (Mul (attr "r1", attr "r1"), attr "r3")) (int 9)) t);
  Alcotest.(check bool)
    "and/or/not" true
    Predicate.(
      eval (conj [ cond_r4; Not (lt (attr "r2") (int 5)) ]) t)

let test_predicate_attrs () =
  Alcotest.(check (list string))
    "attrs" [ "r2"; "s1" ]
    (Predicate.attrs join_cond);
  Alcotest.(check (list (pair string string)))
    "equi pairs"
    [ ("r2", "s1") ]
    (Predicate.equi_pairs join_cond)

let test_predicate_restrict () =
  let p = Predicate.(conj [ cond_r4; lt (attr "s3") (int 50) ]) in
  let restricted = Predicate.restrict_to p (Schema.attrs schema_r) in
  Alcotest.(check bool)
    "restricted keeps r-conjunct" true
    (Predicate.equal restricted cond_r4)

let test_predicate_simplify () =
  Alcotest.(check bool)
    "and true" true
    Predicate.(equal (simplify (And (True, cond_r4))) cond_r4);
  Alcotest.(check bool)
    "or false" true
    Predicate.(equal (simplify (Or (cond_r4, False))) cond_r4);
  Alcotest.(check bool)
    "not not stays" true
    Predicate.(equal (simplify (Not True)) False)

(* --- Bag --- *)

let test_bag_multiplicity () =
  let b = Bag.add ~mult:2 (Bag.add sample_r (r_tuple 9 9 9 9)) (r_tuple 9 9 9 9) in
  Alcotest.(check int) "mult" 3 (Bag.mult b (r_tuple 9 9 9 9));
  Alcotest.(check int) "cardinal" 7 (Bag.cardinal b);
  Alcotest.(check int) "support" 5 (Bag.support_cardinal b);
  let b = Bag.remove ~mult:5 b (r_tuple 9 9 9 9) in
  Alcotest.(check int) "monus clamps" 0 (Bag.mult b (r_tuple 9 9 9 9))

let test_bag_select_project () =
  let sel = Bag.select cond_r4 sample_r in
  Alcotest.(check int) "selected" 3 (Bag.cardinal sel);
  let proj = Bag.project [ "r2" ] sel in
  Alcotest.(check int) "projection keeps multiplicity" 3 (Bag.cardinal proj);
  Alcotest.(check int)
    "projection merges support" 2
    (Bag.support_cardinal proj);
  Alcotest.(check int)
    "r2=10 has multiplicity 2" 2
    (Bag.mult proj (Tuple.of_list [ ("r2", v_int 10) ]))

let test_bag_union_monus () =
  let a = Bag.of_rows schema_s [ [ v_int 1; v_int 2; v_int 3 ] ] in
  let b = Bag.union a a in
  Alcotest.(check int) "union doubles" 2 (Bag.mult b (s_tuple 1 2 3));
  let m = Bag.monus b a in
  Alcotest.(check int) "monus subtracts" 1 (Bag.mult m (s_tuple 1 2 3))

let test_bag_set_ops () =
  let a = Bag.of_rows schema_s [ [ v_int 1; v_int 2; v_int 3 ]; [ v_int 4; v_int 5; v_int 6 ] ] in
  let b = Bag.of_rows schema_s [ [ v_int 1; v_int 2; v_int 3 ] ] in
  let d = Bag.set_diff a b in
  Alcotest.(check int) "diff size" 1 (Bag.cardinal d);
  Alcotest.(check bool) "diff member" true (Bag.mem d (s_tuple 4 5 6));
  let i = Bag.inter_set a b in
  Alcotest.(check int) "inter size" 1 (Bag.cardinal i);
  Alcotest.(check bool) "is_set" true (Bag.is_set d)

let test_bag_join_equi () =
  let joined =
    Bag.join ~on:join_cond (Bag.select cond_r4 sample_r)
      (Bag.select cond_s3 sample_s)
  in
  (* r2 values 10,20,10 match s1 values 10,20 *)
  Alcotest.(check int) "join size" 3 (Bag.cardinal joined);
  Alcotest.(check (list string))
    "join schema"
    [ "r1"; "r2"; "r3"; "r4"; "s1"; "s2"; "s3" ]
    (Schema.attrs (Bag.schema joined))

let test_bag_join_natural () =
  (* shared attribute name joins naturally *)
  let sa = Schema.make [ ("x", Value.TInt); ("y", Value.TInt) ] in
  let sb = Schema.make [ ("y", Value.TInt); ("z", Value.TInt) ] in
  let a = Bag.of_rows sa [ [ v_int 1; v_int 2 ]; [ v_int 3; v_int 4 ] ] in
  let b = Bag.of_rows sb [ [ v_int 2; v_int 9 ] ] in
  let j = Bag.join a b in
  Alcotest.(check int) "natural join" 1 (Bag.cardinal j);
  Alcotest.check tuple "joined tuple"
    (Tuple.of_list [ ("x", v_int 1); ("y", v_int 2); ("z", v_int 9) ])
    (List.hd (Bag.support j))

let test_bag_join_theta () =
  (* pure theta join without equalities: Example 5.1's a1^2 + a2 < b2^2 *)
  let sa = Schema.make [ ("a1", Value.TInt); ("a2", Value.TInt) ] in
  let sb = Schema.make [ ("b1", Value.TInt); ("b2", Value.TInt) ] in
  let a = Bag.of_rows sa [ [ v_int 1; v_int 2 ]; [ v_int 5; v_int 0 ] ] in
  let b = Bag.of_rows sb [ [ v_int 7; v_int 2 ] ] in
  let cond =
    Predicate.(
      lt
        (Add (Mul (attr "a1", attr "a1"), attr "a2"))
        (Mul (attr "b2", attr "b2")))
  in
  let j = Bag.join ~on:cond a b in
  (* 1+2=3 < 4 yes; 25+0 < 4 no *)
  Alcotest.(check int) "theta join" 1 (Bag.cardinal j)

let test_bag_join_multiplicity () =
  let sa = Schema.make [ ("x", Value.TInt) ] in
  let sb = Schema.make [ ("x", Value.TInt) ] in
  let a = Bag.add ~mult:2 (Bag.empty sa) (Tuple.of_list [ ("x", v_int 1) ]) in
  let b = Bag.add ~mult:3 (Bag.empty sb) (Tuple.of_list [ ("x", v_int 1) ]) in
  let j = Bag.join a b in
  Alcotest.(check int)
    "multiplicities multiply" 6
    (Bag.mult j (Tuple.of_list [ ("x", v_int 1) ]))

let test_bag_product_overlap () =
  Alcotest.check_raises "overlapping product"
    (Bag.Bag_error "product: overlapping attributes r1, r2, r3, r4")
    (fun () -> ignore (Bag.product sample_r sample_r))

(* --- Expr / Eval --- *)

let env_rs name =
  match name with
  | "R" -> Some sample_r
  | "S" -> Some sample_s
  | _ -> None

let test_eval_example_2_1 () =
  let t = Eval.eval ~env:env_rs t_def in
  Alcotest.(check int) "T cardinality" 3 (Bag.cardinal t);
  Alcotest.(check (list string))
    "T schema"
    [ "r1"; "r3"; "s1"; "s2" ]
    (Schema.attrs (Bag.schema t));
  Alcotest.(check bool)
    "contains (1,7,10,55)" true
    (Bag.mem t
       (Tuple.of_list
          [ ("r1", v_int 1); ("r3", v_int 7); ("s1", v_int 10); ("s2", v_int 55) ]))

let test_eval_union_diff () =
  let sch = Schema.make [ ("x", Value.TInt) ] in
  let mk rows = Bag.of_rows sch (List.map (fun i -> [ v_int i ]) rows) in
  let env = function
    | "A" -> Some (mk [ 1; 2; 2 ])
    | "B" -> Some (mk [ 2; 3 ])
    | _ -> None
  in
  let u = Eval.eval ~env Expr.(union (base "A") (base "B")) in
  Alcotest.(check int) "bag union keeps dups" 5 (Bag.cardinal u);
  let d = Eval.eval ~env Expr.(diff (base "A") (base "B")) in
  Alcotest.(check int) "set difference" 1 (Bag.cardinal d);
  Alcotest.(check bool) "1 in diff" true (Bag.mem d (Tuple.of_list [ ("x", v_int 1) ]))

let test_eval_unbound () =
  Alcotest.check_raises "unbound" (Eval.Unbound_relation "Z") (fun () ->
      ignore (Eval.eval ~env:env_rs (Expr.base "Z")))

let test_expr_schema_errors () =
  (* union of incompatible schemas *)
  (try
     ignore
       (Expr.schema_of
          (function "R" -> schema_r | _ -> schema_s)
          Expr.(union (base "R") (base "S")));
     Alcotest.fail "expected Expr_error"
   with Expr.Expr_error _ -> ());
  (* select on unknown attribute *)
  try
    ignore
      (Expr.schema_of
         (fun _ -> schema_s)
         Expr.(select cond_r4 (base "S")));
    Alcotest.fail "expected Expr_error"
  with Expr.Expr_error _ -> ()

let test_expr_predicates () =
  Alcotest.(check bool) "spj" true (Expr.is_spj t_def);
  Alcotest.(check bool)
    "sp of single" true
    (Expr.is_select_project_of "R" Expr.(project [ "r1" ] (select cond_r4 (base "R"))));
  Alcotest.(check bool)
    "join not sp" false
    (Expr.is_select_project_of "R" t_def);
  Alcotest.(check bool)
    "setop shape" true
    Expr.(is_setop_of_sp (diff (project [ "s1" ] (base "A")) (base "B")));
  Alcotest.(check (list string)) "base names" [ "R"; "S" ] (Expr.base_names t_def)

(* --- Rename --- *)

let test_rename_eval () =
  let renamed =
    Eval.eval
      ~env:(function "S" -> Some sample_s | _ -> None)
      Expr.(rename [ ("s1", "id"); ("s2", "score") ] (base "S"))
  in
  Alcotest.(check (list string))
    "renamed schema"
    [ "id"; "score"; "s3" ]
    (Schema.attrs (Bag.schema renamed));
  Alcotest.(check (list string)) "key renamed" [ "id" ] (Schema.key (Bag.schema renamed));
  Alcotest.(check int) "cardinality preserved" (Bag.cardinal sample_s) (Bag.cardinal renamed);
  Alcotest.(check bool)
    "values carried over" true
    (Bag.mem renamed
       (Tuple.of_list
          [ ("id", v_int 10); ("score", v_int 55); ("s3", v_int 20) ]))

let test_rename_composes () =
  (* rename then select in the new namespace *)
  let e =
    Expr.(
      select
        Predicate.(lt (attr "score") (int 60))
        (rename [ ("s2", "score") ] (base "S")))
  in
  let out = Eval.eval ~env:(function "S" -> Some sample_s | _ -> None) e in
  Alcotest.(check int) "filtered in renamed namespace" 1 (Bag.cardinal out)

let test_rename_errors () =
  (try
     ignore
       (Expr.schema_of
          (fun _ -> schema_s)
          Expr.(rename [ ("nope", "x") ] (base "S")));
     Alcotest.fail "expected Expr_error"
   with Expr.Expr_error _ -> ());
  (* collision with a kept attribute *)
  try
    ignore
      (Expr.schema_of
         (fun _ -> schema_s)
         Expr.(rename [ ("s1", "s2") ] (base "S")));
    Alcotest.fail "expected Expr_error (collision)"
  with Expr.Expr_error _ -> ()

let test_rename_fd () =
  let fds =
    Fd.derive
      (function "S" -> Fd.of_key schema_s | _ -> Fd.make [])
      Expr.(rename [ ("s1", "id") ] (base "S"))
  in
  Alcotest.(check bool) "key FD renamed" true (Fd.determines fds [ "id" ] "s2")

(* --- Fd --- *)

let test_fd_closure () =
  let fds = Fd.of_key schema_r in
  Alcotest.(check (list string))
    "closure of key"
    [ "r1"; "r2"; "r3"; "r4" ]
    (Fd.closure fds [ "r1" ]);
  Alcotest.(check bool) "determines" true (Fd.determines fds [ "r1" ] "r3");
  Alcotest.(check bool) "no reverse" false (Fd.determines fds [ "r3" ] "r1")

let test_fd_transitive () =
  let fds =
    Fd.make [ { lhs = [ "a" ]; rhs = [ "b" ] }; { lhs = [ "b" ]; rhs = [ "c" ] } ]
  in
  Alcotest.(check bool) "transitivity" true (Fd.determines fds [ "a" ] "c")

let test_fd_derive_example_2_3 () =
  (* T = pi(sigma R |X|_{r2=s1} sigma S): r1 (key of R) determines r3 in T *)
  let env = function
    | "R" -> Fd.of_key schema_r
    | "S" -> Fd.of_key schema_s
    | _ -> Fd.make []
  in
  let fds = Fd.derive env t_def in
  Alcotest.(check bool)
    "T : r1 -> r3 (inference of Example 2.3)" true
    (Fd.determines fds [ "r1" ] "r3");
  Alcotest.(check bool)
    "T : s1 -> s2" true
    (Fd.determines fds [ "s1" ] "s2");
  (* r2 is projected away in T, so r2 -> s1 holds only pre-projection *)
  Alcotest.(check bool)
    "projection drops r2's FDs" false
    (Fd.determines fds [ "r2" ] "s1");
  let join_fds =
    Fd.derive env
      Expr.(join ~on:join_cond (select cond_r4 (base "R")) (select cond_s3 (base "S")))
  in
  Alcotest.(check bool)
    "equi pair before projection: r2 -> s1" true
    (Fd.determines join_fds [ "r2" ] "s1")

let test_fd_union_kills () =
  let env = fun _ -> Fd.of_key schema_s in
  let fds = Fd.derive env Expr.(union (base "S") (base "S")) in
  Alcotest.(check bool)
    "no FDs through bag union" false
    (Fd.determines fds [ "s1" ] "s2")

(* --- qcheck properties --- *)

let prop_project_preserves_cardinality =
  qtest "bag projection preserves total multiplicity" (bag_gen schema_s)
    (fun b -> Bag.cardinal (Bag.project [ "s2" ] b) = Bag.cardinal b)

let prop_union_cardinality =
  qtest "union cardinality adds"
    QCheck2.Gen.(pair (bag_gen schema_s) (bag_gen schema_s))
    (fun (a, b) -> Bag.cardinal (Bag.union a b) = Bag.cardinal a + Bag.cardinal b)

let prop_monus_inverse_of_union =
  qtest "monus undoes union"
    QCheck2.Gen.(pair (bag_gen schema_s) (bag_gen schema_s))
    (fun (a, b) -> Bag.equal (Bag.monus (Bag.union a b) b) a)

let prop_select_partition =
  qtest "select p + select not p partition the bag" (bag_gen schema_s)
    (fun b ->
      let p = cond_s3 in
      Bag.equal
        (Bag.union (Bag.select p b) (Bag.select (Predicate.Not p) b))
        b)

let prop_join_commutes =
  qtest "join support is commutative"
    QCheck2.Gen.(pair (bag_gen schema_r) (bag_gen schema_s))
    (fun (r, s) ->
      let j1 = Bag.join ~on:join_cond r s in
      let j2 = Bag.join ~on:join_cond s r in
      Bag.cardinal j1 = Bag.cardinal j2)

let prop_set_diff_set_semantics =
  qtest "set_diff yields sets disjoint from subtrahend"
    QCheck2.Gen.(pair (bag_gen schema_s) (bag_gen schema_s))
    (fun (a, b) ->
      let d = Bag.set_diff a b in
      Bag.is_set d
      && List.for_all (fun t -> not (Bag.mem b t)) (Bag.support d))

let () =
  Alcotest.run "relalg"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "arith" `Quick test_value_arith;
          Alcotest.test_case "hash consistency" `Quick test_value_hash_consistency;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basic" `Quick test_schema_basic;
          Alcotest.test_case "project" `Quick test_schema_project;
          Alcotest.test_case "duplicate detection" `Quick test_schema_dup;
          Alcotest.test_case "join" `Quick test_schema_join;
          Alcotest.test_case "union compat" `Quick test_schema_union_compatible;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "basic" `Quick test_tuple_basic;
          Alcotest.test_case "concat" `Quick test_tuple_concat;
          Alcotest.test_case "schema match" `Quick test_tuple_schema_match;
        ] );
      ( "predicate",
        [
          Alcotest.test_case "eval" `Quick test_predicate_eval;
          Alcotest.test_case "attrs" `Quick test_predicate_attrs;
          Alcotest.test_case "restrict_to" `Quick test_predicate_restrict;
          Alcotest.test_case "simplify" `Quick test_predicate_simplify;
        ] );
      ( "bag",
        [
          Alcotest.test_case "multiplicity" `Quick test_bag_multiplicity;
          Alcotest.test_case "select/project" `Quick test_bag_select_project;
          Alcotest.test_case "union/monus" `Quick test_bag_union_monus;
          Alcotest.test_case "set ops" `Quick test_bag_set_ops;
          Alcotest.test_case "equi join" `Quick test_bag_join_equi;
          Alcotest.test_case "natural join" `Quick test_bag_join_natural;
          Alcotest.test_case "theta join" `Quick test_bag_join_theta;
          Alcotest.test_case "join multiplicity" `Quick test_bag_join_multiplicity;
          Alcotest.test_case "product overlap" `Quick test_bag_product_overlap;
        ] );
      ( "eval",
        [
          Alcotest.test_case "Example 2.1 view" `Quick test_eval_example_2_1;
          Alcotest.test_case "union/diff semantics" `Quick test_eval_union_diff;
          Alcotest.test_case "unbound relation" `Quick test_eval_unbound;
          Alcotest.test_case "schema errors" `Quick test_expr_schema_errors;
          Alcotest.test_case "shape predicates" `Quick test_expr_predicates;
        ] );
      ( "rename",
        [
          Alcotest.test_case "eval" `Quick test_rename_eval;
          Alcotest.test_case "composes with select" `Quick test_rename_composes;
          Alcotest.test_case "errors" `Quick test_rename_errors;
          Alcotest.test_case "FDs follow" `Quick test_rename_fd;
        ] );
      ( "fd",
        [
          Alcotest.test_case "closure" `Quick test_fd_closure;
          Alcotest.test_case "transitivity" `Quick test_fd_transitive;
          Alcotest.test_case "Example 2.3 inference" `Quick test_fd_derive_example_2_3;
          Alcotest.test_case "union kills FDs" `Quick test_fd_union_kills;
        ] );
      ( "properties",
        [
          prop_project_preserves_cardinality;
          prop_union_cardinality;
          prop_monus_inverse_of_union;
          prop_select_partition;
          prop_join_commutes;
          prop_set_diff_set_semantics;
        ] );
    ]

(* Tests for the mediator-local store: indexed tables and delta
   repositories. *)

open Relalg
open Delta
open Storage
open Tutil

let test_table_basic () =
  let t = Table.create ~name:"S" schema_s in
  Table.insert t (s_tuple 1 2 3);
  Table.insert ~mult:2 t (s_tuple 4 5 6);
  Alcotest.(check int) "cardinal" 3 (Table.cardinal t);
  Alcotest.(check int) "support" 2 (Table.support_cardinal t);
  Alcotest.(check int) "mult" 2 (Table.mult t (s_tuple 4 5 6));
  Table.delete t (s_tuple 4 5 6);
  Alcotest.(check int) "after delete" 1 (Table.mult t (s_tuple 4 5 6));
  Table.delete ~mult:10 t (s_tuple 4 5 6);
  Alcotest.(check int) "monus clamps" 0 (Table.mult t (s_tuple 4 5 6))

let test_table_key_index () =
  let t = Table.create ~name:"S" schema_s in
  for i = 0 to 9 do
    Table.insert t (s_tuple i (i * 10) (i * 3))
  done;
  Alcotest.(check bool) "key indexed" true (Table.has_index_on t [ "s1" ]);
  let hit = Table.lookup t [ "s1" ] [ Value.Int 4 ] in
  Alcotest.(check int) "indexed lookup" 1 (Bag.cardinal hit);
  Alcotest.(check bool) "right tuple" true (Bag.mem hit (s_tuple 4 40 12));
  let miss = Table.lookup t [ "s1" ] [ Value.Int 99 ] in
  Alcotest.(check int) "miss" 0 (Bag.cardinal miss)

let test_table_secondary_index () =
  let t = Table.create ~indexes:[ [ "s2" ] ] ~name:"S" schema_s in
  Table.insert t (s_tuple 1 7 0);
  Table.insert t (s_tuple 2 7 0);
  Table.insert t (s_tuple 3 8 0);
  Alcotest.(check bool) "secondary index" true (Table.has_index_on t [ "s2" ]);
  Alcotest.(check int)
    "two matches" 2
    (Bag.cardinal (Table.lookup t [ "s2" ] [ Value.Int 7 ]))

let test_table_scan_lookup () =
  let t = Table.create ~name:"S" schema_s in
  Table.insert t (s_tuple 1 7 0);
  Table.insert t (s_tuple 2 7 0);
  (* no index on s3: falls back to scanning *)
  Alcotest.(check bool) "no index" false (Table.has_index_on t [ "s3" ]);
  Alcotest.(check int)
    "scan finds both" 2
    (Bag.cardinal (Table.lookup t [ "s3" ] [ Value.Int 0 ]))

let test_table_index_maintained_through_deletes () =
  let t = Table.create ~name:"S" schema_s in
  Table.insert t (s_tuple 1 2 3);
  Table.delete t (s_tuple 1 2 3);
  Alcotest.(check int)
    "index entry removed" 0
    (Bag.cardinal (Table.lookup t [ "s1" ] [ Value.Int 1 ]))

let test_table_apply_delta_and_load () =
  let t = Table.create ~name:"S" schema_s in
  Table.load t (Bag.of_tuples schema_s [ s_tuple 1 2 3; s_tuple 4 5 6 ]);
  let d =
    Rel_delta.insert
      (Rel_delta.delete (Rel_delta.empty schema_s) (s_tuple 1 2 3))
      (s_tuple 7 8 9)
  in
  Table.apply_delta t d;
  check_bag "delta applied"
    (Bag.of_tuples schema_s [ s_tuple 4 5 6; s_tuple 7 8 9 ])
    (Table.contents t);
  Alcotest.(check int)
    "index consistent after load+delta" 1
    (Bag.cardinal (Table.lookup t [ "s1" ] [ Value.Int 7 ]))

let test_table_rejects_bad_tuple () =
  let t = Table.create ~name:"S" schema_s in
  try
    Table.insert t (Tuple.of_list [ ("x", Value.Int 1) ]);
    Alcotest.fail "expected Bag_error"
  with Bag.Bag_error _ -> ()

let test_store_catalog () =
  let store = Store.create () in
  let _ = Store.create_table store ~name:"S" schema_s in
  Alcotest.(check bool) "mem" true (Store.mem store "S");
  Alcotest.(check (list string)) "names" [ "S" ] (Store.table_names store);
  (try
     ignore (Store.create_table store ~name:"S" schema_s);
     Alcotest.fail "expected Store_error"
   with Store.Store_error _ -> ());
  try
    ignore (Store.table store "NOPE");
    Alcotest.fail "expected Store_error"
  with Store.Store_error _ -> ()

let test_store_delta_repositories () =
  let store = Store.create () in
  let _ = Store.create_table store ~name:"S" schema_s in
  Alcotest.(check bool)
    "initially empty" true
    (Rel_delta.is_empty (Store.delta store "S"));
  Store.add_delta store "S"
    (Rel_delta.insert (Rel_delta.empty schema_s) (s_tuple 1 2 3));
  Store.add_delta store "S"
    (Rel_delta.insert (Rel_delta.empty schema_s) (s_tuple 4 5 6));
  Alcotest.(check int) "smashed" 2 (Rel_delta.atom_count (Store.delta store "S"));
  let taken = Store.take_delta store "S" in
  Alcotest.(check int) "taken" 2 (Rel_delta.atom_count taken);
  Alcotest.(check bool)
    "cleared" true
    (Rel_delta.is_empty (Store.delta store "S"))

let test_store_env_and_bytes () =
  let store = Store.create () in
  let tbl = Store.create_table store ~name:"S" schema_s in
  Table.insert tbl (s_tuple 1 2 3);
  (match Store.env store "S" with
  | Some b -> Alcotest.(check int) "env view" 1 (Bag.cardinal b)
  | None -> Alcotest.fail "expected table");
  Alcotest.(check (option reject)) "absent" None
    (Option.map (fun (_ : Bag.t) -> ()) (Store.env store "NOPE"));
  Alcotest.(check bool) "bytes counted" true (Store.total_bytes store > 0)

let () =
  Alcotest.run "storage"
    [
      ( "table",
        [
          Alcotest.test_case "basic" `Quick test_table_basic;
          Alcotest.test_case "key index" `Quick test_table_key_index;
          Alcotest.test_case "secondary index" `Quick test_table_secondary_index;
          Alcotest.test_case "scan fallback" `Quick test_table_scan_lookup;
          Alcotest.test_case "index through deletes" `Quick test_table_index_maintained_through_deletes;
          Alcotest.test_case "apply delta / load" `Quick test_table_apply_delta_and_load;
          Alcotest.test_case "rejects bad tuples" `Quick test_table_rejects_bad_tuple;
        ] );
      ( "store",
        [
          Alcotest.test_case "catalog" `Quick test_store_catalog;
          Alcotest.test_case "delta repositories" `Quick test_store_delta_repositories;
          Alcotest.test_case "env and bytes" `Quick test_store_env_and_bytes;
        ] );
    ]

(* Tests for the textual view-definition syntax. *)

open Relalg
open Tutil

let check_expr name src expected =
  Alcotest.(check bool)
    name true
    (Expr.equal (Parser.expr src) expected)

let check_pred name src expected =
  Alcotest.(check bool)
    name true
    (Predicate.equal (Parser.predicate src) expected)

let test_base_and_project () =
  check_expr "bare relation" "R" (Expr.base "R");
  check_expr "projection" "project a, b (R)"
    Expr.(project [ "a"; "b" ] (base "R"));
  check_expr "nested parens" "((R))" (Expr.base "R")

let test_select () =
  check_pred "equality" "r4 = 100" Predicate.(eq (attr "r4") (int 100));
  check_expr "selection" "select r4 = 100 (R)"
    Expr.(select Predicate.(eq (attr "r4") (int 100)) (base "R"))

let test_example_2_1_roundtrip () =
  let parsed =
    Parser.expr
      "project r1, r3, s1, s2 (select r4 = 100 (R) join on r2 = s1 select s3 \
       < 50 (S))"
  in
  Alcotest.(check bool) "matches the Example 2.1 AST" true
    (Expr.equal parsed t_def);
  (* and evaluates identically *)
  let env = function
    | "R" -> Some sample_r
    | "S" -> Some sample_s
    | _ -> None
  in
  check_bag "same evaluation" (Eval.eval ~env t_def) (Eval.eval ~env parsed)

let test_union_minus () =
  check_expr "union" "A union B" Expr.(union (base "A") (base "B"));
  check_expr "minus" "A minus B" Expr.(diff (base "A") (base "B"));
  check_expr "setops right-assoc via parens"
    "(project x (A)) minus (project x (B))"
    Expr.(diff (project [ "x" ] (base "A")) (project [ "x" ] (base "B")))

let test_join_variants () =
  check_expr "natural join" "A join B" Expr.(join (base "A") (base "B"));
  check_expr "chained joins" "A join B join C"
    Expr.(join (join (base "A") (base "B")) (base "C"));
  check_expr "theta join with arithmetic"
    "A join on a1 * a1 + a2 < b2 * b2 B"
    Expr.(
      join
        ~on:
          Predicate.(
            lt
              (Add (Mul (attr "a1", attr "a1"), attr "a2"))
              (Mul (attr "b2", attr "b2")))
        (base "A") (base "B"))

let test_predicate_connectives () =
  check_pred "and/or precedence" "a = 1 and b = 2 or c = 3"
    Predicate.(
      Or (And (eq (attr "a") (int 1), eq (attr "b") (int 2)), eq (attr "c") (int 3)));
  check_pred "not" "not a < 3" Predicate.(Not (lt (attr "a") (int 3)));
  check_pred "parenthesized predicate" "(a = 1 or b = 2) and c = 3"
    Predicate.(
      And (Or (eq (attr "a") (int 1), eq (attr "b") (int 2)), eq (attr "c") (int 3)));
  check_pred "true/false" "true and not false" Predicate.(And (True, Not False))

let test_literals () =
  check_pred "float" "x >= 2.5" Predicate.(ge (attr "x") (flt 2.5));
  check_pred "string" "name = 'alice'" Predicate.(eq (attr "name") (str "alice"));
  check_pred "negative" "x = -3"
    Predicate.(eq (attr "x") (Neg (Const (Value.Int 3))));
  check_pred "not-equal spellings" "x <> 3" Predicate.(ne (attr "x") (int 3));
  check_pred "!= alias" "x != 3" Predicate.(ne (attr "x") (int 3))

let test_parenthesized_arith_comparison () =
  (* '(' opening an arithmetic term inside a comparison *)
  check_pred "arith parens" "(a + b) * 2 < 10"
    Predicate.(
      lt (Mul (Add (attr "a", attr "b"), Const (Value.Int 2))) (int 10))

let test_primed_identifiers () =
  check_expr "VDP node names parse" "R' join S'"
    Expr.(join (base "R'") (base "S'"))

let test_rename_syntax () =
  check_expr "rename" "rename wid to oid, client to cust (OrdersW)"
    Expr.(rename [ ("wid", "oid"); ("client", "cust") ] (base "OrdersW"));
  check_expr "rename under select"
    "select oid < 5 (rename wid to oid (W))"
    Expr.(
      select Predicate.(lt (attr "oid") (int 5))
        (rename [ ("wid", "oid") ] (base "W")))

let test_attr_list () =
  Alcotest.(check (list string))
    "attrs" [ "r1"; "r3"; "s1" ]
    (Parser.attrs "r1, r3, s1")

let expect_error name src =
  Alcotest.test_case name `Quick (fun () ->
      try
        ignore (Parser.expr src);
        Alcotest.fail "expected Parse_error"
      with Parser.Parse_error _ -> ())

let test_keywords_case_insensitive () =
  check_expr "upper-case keywords" "SELECT x = 1 (R) UNION S"
    Expr.(union (select Predicate.(eq (attr "x") (int 1)) (base "R")) (base "S"))

let () =
  Alcotest.run "parser"
    [
      ( "expressions",
        [
          Alcotest.test_case "base/project" `Quick test_base_and_project;
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "Example 2.1 round-trip" `Quick test_example_2_1_roundtrip;
          Alcotest.test_case "union/minus" `Quick test_union_minus;
          Alcotest.test_case "join variants" `Quick test_join_variants;
          Alcotest.test_case "primed identifiers" `Quick test_primed_identifiers;
          Alcotest.test_case "case-insensitive keywords" `Quick test_keywords_case_insensitive;
          Alcotest.test_case "rename syntax" `Quick test_rename_syntax;
        ] );
      ( "predicates",
        [
          Alcotest.test_case "connectives" `Quick test_predicate_connectives;
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "parenthesized arithmetic" `Quick test_parenthesized_arith_comparison;
          Alcotest.test_case "attribute lists" `Quick test_attr_list;
        ] );
      ( "errors",
        [
          expect_error "unbalanced parens" "select x = 1 (R";
          expect_error "missing condition" "select (R)";
          expect_error "trailing input" "R S";
          expect_error "bad character" "R ? S";
          expect_error "unterminated string" "select x = 'oops (R)";
        ] );
    ]

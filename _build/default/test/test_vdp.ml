(* Tests for View Decomposition Plans: structure (Def. 5.1), the
   builder, derived_from (Sec. 6.3), the rulebase (Sec. 5.2),
   annotations and the Sec. 5.3 advisor. *)

open Relalg
open Delta
open Vdp
open Tutil

(* --- hand-built Figure 1 VDP -------------------------------------- *)

let schema_r' =
  Schema.make ~key:[ "r1" ]
    [ ("r1", Value.TInt); ("r2", Value.TInt); ("r3", Value.TInt) ]

let schema_s' =
  Schema.make ~key:[ "s1" ] [ ("s1", Value.TInt); ("s2", Value.TInt) ]

let schema_t =
  Schema.make
    [ ("r1", Value.TInt); ("r3", Value.TInt); ("s1", Value.TInt); ("s2", Value.TInt) ]

let fig1_nodes =
  [
    { Graph.name = "R"; schema = schema_r; kind = Graph.Leaf { source = "db1" }; export = false };
    { Graph.name = "S"; schema = schema_s; kind = Graph.Leaf { source = "db2" }; export = false };
    {
      Graph.name = "R'";
      schema = schema_r';
      kind = Graph.Derived Expr.(project [ "r1"; "r2"; "r3" ] (select cond_r4 (base "R")));
      export = false;
    };
    {
      Graph.name = "S'";
      schema = schema_s';
      kind = Graph.Derived Expr.(project [ "s1"; "s2" ] (select cond_s3 (base "S")));
      export = false;
    };
    {
      Graph.name = "T";
      schema = schema_t;
      kind =
        Graph.Derived
          Expr.(project [ "r1"; "r3"; "s1"; "s2" ] (join ~on:join_cond (base "R'") (base "S'")));
      export = true;
    };
  ]

let fig1 = Graph.make fig1_nodes

let test_graph_structure () =
  Alcotest.(check (list string)) "children of T" [ "R'"; "S'" ] (Graph.children fig1 "T");
  Alcotest.(check (list string)) "parents of R'" [ "T" ] (Graph.parents fig1 "R'");
  Alcotest.(check (list string)) "sources" [ "db1"; "db2" ] (Graph.sources fig1);
  Alcotest.(check string) "source of R" "db1" (Graph.source_of_leaf fig1 "R");
  Alcotest.(check bool) "R is leaf" true (Graph.is_leaf fig1 "R");
  Alcotest.(check bool) "T not set node" false (Graph.is_set_node fig1 "T");
  Alcotest.(check (list string))
    "leaf parents"
    [ "R'"; "S'" ]
    (List.sort String.compare (List.map (fun n -> n.Graph.name) (Graph.leaf_parents fig1)));
  Alcotest.(check (list string))
    "exports" [ "T" ]
    (List.map (fun n -> n.Graph.name) (Graph.exports fig1))

let test_graph_topo () =
  let order = Graph.topo_order fig1 in
  let pos x = Option.get (List.find_index (String.equal x) order) in
  Alcotest.(check int) "3 non-leaves" 3 (List.length order);
  Alcotest.(check bool) "R' before T" true (pos "R'" < pos "T");
  Alcotest.(check bool) "S' before T" true (pos "S'" < pos "T")

let test_graph_descendants () =
  Alcotest.(check (list string))
    "descendants of T"
    [ "R"; "R'"; "S"; "S'" ]
    (Graph.descendants fig1 "T");
  Alcotest.(check (list string)) "ancestors of R" [ "R'"; "T" ] (Graph.ancestors fig1 "R")

let test_graph_rejects_leaf_parent_join () =
  (* restriction (a): leaf-parent may not join *)
  let bad =
    [
      { Graph.name = "R"; schema = schema_r; kind = Graph.Leaf { source = "db1" }; export = false };
      { Graph.name = "S"; schema = schema_s; kind = Graph.Leaf { source = "db2" }; export = false };
      {
        Graph.name = "T";
        schema = Schema.join schema_r schema_s;
        kind = Graph.Derived Expr.(join ~on:join_cond (base "R") (base "S"));
        export = true;
      };
    ]
  in
  try
    ignore (Graph.make bad);
    Alcotest.fail "expected Vdp_error"
  with Graph.Vdp_error _ -> ()

let test_graph_rejects_join_under_diff () =
  (* restriction (c): children of a difference must be select/project *)
  let sch = Schema.make [ ("x", Value.TInt) ] in
  let bad =
    [
      { Graph.name = "A"; schema = sch; kind = Graph.Leaf { source = "d" }; export = false };
      { Graph.name = "A'"; schema = sch; kind = Graph.Derived (Expr.base "A"); export = false };
      { Graph.name = "B"; schema = Schema.make [ ("y", Value.TInt) ]; kind = Graph.Leaf { source = "d" }; export = false };
      { Graph.name = "B'"; schema = Schema.make [ ("y", Value.TInt) ]; kind = Graph.Derived (Expr.base "B"); export = false };
      {
        Graph.name = "T";
        schema = Schema.join sch (Schema.make [ ("y", Value.TInt) ]);
        kind =
          Graph.Derived
            Expr.(diff (join (base "A'") (base "B'")) (join (base "A'") (base "B'")));
        export = true;
      };
    ]
  in
  try
    ignore (Graph.make bad);
    Alcotest.fail "expected Vdp_error"
  with Graph.Vdp_error _ -> ()

let test_graph_rejects_cycle () =
  let sch = Schema.make [ ("x", Value.TInt) ] in
  let bad =
    [
      { Graph.name = "A"; schema = sch; kind = Graph.Derived (Expr.base "B"); export = true };
      { Graph.name = "B"; schema = sch; kind = Graph.Derived (Expr.base "A"); export = true };
    ]
  in
  try
    ignore (Graph.make bad);
    Alcotest.fail "expected Vdp_error"
  with Graph.Vdp_error _ -> ()

let test_graph_rejects_unexported_maximal () =
  let sch = Schema.make [ ("x", Value.TInt) ] in
  let bad =
    [
      { Graph.name = "A"; schema = sch; kind = Graph.Leaf { source = "d" }; export = false };
      { Graph.name = "A'"; schema = sch; kind = Graph.Derived (Expr.base "A"); export = false };
    ]
  in
  try
    ignore (Graph.make bad);
    Alcotest.fail "expected Vdp_error"
  with Graph.Vdp_error _ -> ()

let test_graph_rejects_schema_mismatch () =
  let sch = Schema.make [ ("x", Value.TInt) ] in
  let bad =
    [
      { Graph.name = "A"; schema = sch; kind = Graph.Leaf { source = "d" }; export = false };
      {
        Graph.name = "A'";
        schema = Schema.make [ ("y", Value.TInt) ];
        kind = Graph.Derived (Expr.base "A");
        export = true;
      };
    ]
  in
  try
    ignore (Graph.make bad);
    Alcotest.fail "expected Vdp_error"
  with Graph.Vdp_error _ -> ()

(* --- builder ------------------------------------------------------- *)

let source_env name =
  match name with "R" -> Some "db1" | "S" -> Some "db2" | _ -> None

let schema_env name =
  match name with "R" -> Some schema_r | "S" -> Some schema_s | _ -> None

let build_fig1 () =
  let b = Builder.create ~source_of:source_env ~schema_of:schema_env () in
  Builder.add_export b ~name:"T" t_def;
  Builder.build b

let test_builder_fig1_structure () =
  let vdp = build_fig1 () in
  Alcotest.(check (list string))
    "nodes"
    [ "R"; "R'"; "S"; "S'"; "T" ]
    (Graph.node_names vdp);
  Alcotest.(check (list string)) "T children" [ "R'"; "S'" ] (Graph.children vdp "T")

let test_builder_leaf_parent_projection () =
  (* the paper's R' keeps r1,r2,r3 and drops the selection attribute r4 *)
  let vdp = build_fig1 () in
  let r' = Graph.node vdp "R'" in
  Alcotest.(check (list string))
    "R' attrs (Figure 1)"
    [ "r1"; "r2"; "r3" ]
    (Schema.attrs r'.Graph.schema);
  let s' = Graph.node vdp "S'" in
  Alcotest.(check (list string))
    "S' attrs (Figure 1)"
    [ "s1"; "s2" ]
    (Schema.attrs s'.Graph.schema);
  (* keys survive the projection *)
  Alcotest.(check (list string)) "R' key" [ "r1" ] (Schema.key r'.Graph.schema)

let test_builder_equivalence () =
  (* the built VDP computes the same view as direct evaluation *)
  let vdp = build_fig1 () in
  let rec node_value name =
    match (Graph.node vdp name).Graph.kind with
    | Graph.Leaf _ -> (
      match name with "R" -> sample_r | "S" -> sample_s | _ -> assert false)
    | Graph.Derived e -> Eval.eval ~env:(fun n -> Some (node_value n)) e
  in
  let via_vdp = node_value "T" in
  let direct =
    Eval.eval
      ~env:(function "R" -> Some sample_r | "S" -> Some sample_s | _ -> None)
      t_def
  in
  check_bag "VDP evaluation = direct evaluation" direct via_vdp

(* Example 5.1 / Figure 4: two exports, non-equi join, difference *)
let schema_a =
  Schema.make ~key:[ "a1" ] [ ("a1", Value.TInt); ("a2", Value.TInt) ]

let schema_b =
  Schema.make ~key:[ "b1" ] [ ("b1", Value.TInt); ("b2", Value.TInt) ]

let schema_c =
  Schema.make ~key:[ "c1" ] [ ("c1", Value.TInt); ("a1", Value.TInt) ]

let schema_d =
  Schema.make ~key:[ "d1" ] [ ("d1", Value.TInt); ("b1", Value.TInt) ]

let ex51_sources name =
  match name with
  | "A" -> Some "dbA"
  | "B" -> Some "dbB"
  | "C" -> Some "dbC"
  | "D" -> Some "dbD"
  | _ -> None

let ex51_schemas name =
  match name with
  | "A" -> Some schema_a
  | "B" -> Some schema_b
  | "C" -> Some schema_c
  | "D" -> Some schema_d
  | _ -> None

let e_cond =
  Predicate.(
    lt (Add (Mul (attr "a1", attr "a1"), attr "a2")) (Mul (attr "b2", attr "b2")))

let build_ex51 () =
  let b = Builder.create ~source_of:ex51_sources ~schema_of:ex51_schemas () in
  Builder.add_export b ~name:"E"
    Expr.(project [ "a1"; "a2"; "b1" ] (join ~on:e_cond (base "A") (base "B")));
  Builder.add_node b ~name:"F"
    Expr.(project [ "a1"; "b1" ] (join ~on:(Predicate.eq_attrs "c1" "d1") (base "C") (base "D")));
  Builder.add_export b ~name:"G"
    Expr.(diff (project [ "a1"; "b1" ] (base "E")) (base "F"));
  Builder.build b

let test_builder_ex51 () =
  let vdp = build_ex51 () in
  Alcotest.(check (list string))
    "G children" [ "E"; "F" ] (Graph.children vdp "G");
  Alcotest.(check bool) "G is set node" true (Graph.is_set_node vdp "G");
  Alcotest.(check bool) "E exported" true (Graph.node vdp "E").Graph.export;
  Alcotest.(check bool) "F not exported" false (Graph.node vdp "F").Graph.export;
  (* E is referenced by G, so E has a parent *)
  Alcotest.(check (list string)) "E parents" [ "G" ] (Graph.parents vdp "E");
  (* F's children are the leaf-parents of C and D *)
  Alcotest.(check (list string)) "F children" [ "C'"; "D'" ] (Graph.children vdp "F")

let test_builder_shared_leaf_parents () =
  (* two views over the same source relation with the same condition
     share a leaf-parent; a different condition forks a second one *)
  let b = Builder.create ~source_of:source_env ~schema_of:schema_env () in
  Builder.add_export b ~name:"V1" Expr.(project [ "r1" ] (select cond_r4 (base "R")));
  Builder.add_export b ~name:"V2" Expr.(project [ "r2" ] (select cond_r4 (base "R")));
  Builder.add_export b ~name:"V3"
    Expr.(project [ "r3" ] (select Predicate.(lt (attr "r4") (int 5)) (base "R")));
  let vdp = Builder.build b in
  let lps =
    List.sort String.compare (List.map (fun n -> n.Graph.name) (Graph.leaf_parents vdp))
  in
  Alcotest.(check (list string)) "two leaf parents" [ "R'"; "R'2" ] lps;
  (* shared one holds the union of both views' needs *)
  Alcotest.(check (list string))
    "shared R' attrs"
    [ "r1"; "r2" ]
    (Schema.attrs (Graph.node vdp "R'").Graph.schema)

let test_builder_unknown_relation () =
  let b = Builder.create ~source_of:source_env ~schema_of:schema_env () in
  try
    Builder.add_export b ~name:"V" (Expr.base "NOPE");
    Alcotest.fail "expected Builder_error"
  with Builder.Builder_error _ -> ()

(* --- derived_from --------------------------------------------------- *)

let test_derived_from_spj () =
  (* query pi_{r3,s1} sigma_{r3<100} T (Example 2.3) *)
  let cond = Predicate.(lt (attr "r3") (int 100)) in
  let result =
    Derived_from.derived_from fig1 ~node:"T" ~attrs:[ "r3"; "s1" ] ~cond
  in
  (match List.assoc_opt "R'" (List.map (fun (n, b, g) -> (n, (b, g))) result) with
  | Some (b, g) ->
    (* needs r3 (queried), r2 (join condition), and the condition r3<100 *)
    Alcotest.(check (list string)) "B for R'" [ "r2"; "r3" ] (List.sort String.compare b);
    Alcotest.(check bool) "condition pushed to R'" true (Predicate.equal g cond)
  | None -> Alcotest.fail "R' missing");
  match List.assoc_opt "S'" (List.map (fun (n, b, g) -> (n, (b, g))) result) with
  | Some (b, g) ->
    Alcotest.(check (list string)) "B for S'" [ "s1" ] (List.sort String.compare b);
    Alcotest.(check bool) "no S' condition" true (Predicate.equal g Predicate.True)
  | None -> Alcotest.fail "S' missing"

let test_derived_from_diff_includes_output () =
  (* case (4): under a difference both children need the output attrs *)
  let vdp = build_ex51 () in
  let result =
    Derived_from.derived_from vdp ~node:"G" ~attrs:[ "a1" ] ~cond:Predicate.True
  in
  List.iter
    (fun (_, b, _) ->
      Alcotest.(check (list string))
        "children need all output attrs"
        [ "a1"; "b1" ]
        (List.sort String.compare b))
    result;
  Alcotest.(check int) "both children listed" 2 (List.length result)

let test_needed_attrs_of_children () =
  let needs = Derived_from.needed_attrs_of_children fig1 "T" in
  Alcotest.(check (list string))
    "R' contribution"
    [ "r1"; "r2"; "r3" ]
    (List.sort String.compare (List.assoc "R'" needs))

(* --- rules ----------------------------------------------------------- *)

let fig1_env populated name =
  match List.assoc_opt name populated with Some b -> Some b | None -> None

let populated_fig1 () =
  let r' =
    Eval.eval
      ~env:(function "R" -> Some sample_r | _ -> None)
      (Graph.def fig1 "R'")
  in
  let s' =
    Eval.eval
      ~env:(function "S" -> Some sample_s | _ -> None)
      (Graph.def fig1 "S'")
  in
  let t =
    Eval.eval
      ~env:(function "R'" -> Some r' | "S'" -> Some s' | _ -> None)
      (Graph.def fig1 "T")
  in
  [ ("R'", r'); ("S'", s'); ("T", t) ]

let test_rule_example_2_1 () =
  (* rule #1: on changes to R', dT = dR' |X| S' *)
  let populated = populated_fig1 () in
  let env = fig1_env populated in
  let dr' =
    Rel_delta.insert
      (Rel_delta.empty schema_r')
      (Tuple.of_list [ ("r1", v_int 50); ("r2", v_int 10); ("r3", v_int 1) ])
  in
  let dt = Rules.fire_edge fig1 ~env ~node:"T" ~child:"R'" dr' in
  let expected_tuple =
    Tuple.of_list
      [ ("r1", v_int 50); ("r3", v_int 1); ("s1", v_int 10); ("s2", v_int 55) ]
  in
  Alcotest.(check int) "rule #1 output" 1 (Rel_delta.signed_mult dt expected_tuple);
  (* manual check against the textbook formula dR' |X| S' *)
  let manual =
    Rel_delta.project [ "r1"; "r3"; "s1"; "s2" ]
      (Rel_delta.join_bag ~on:join_cond dr' (List.assoc "S'" populated))
  in
  check_delta "matches dR' |X| S'" manual dt

let test_rule_fire_node_simultaneous () =
  (* both children deltas at once (Example 6.1) equals recompute *)
  let populated = populated_fig1 () in
  let env = fig1_env populated in
  let dr' =
    Rel_delta.insert
      (Rel_delta.empty schema_r')
      (Tuple.of_list [ ("r1", v_int 50); ("r2", v_int 99); ("r3", v_int 1) ])
  in
  let ds' =
    Rel_delta.insert
      (Rel_delta.empty schema_s')
      (Tuple.of_list [ ("s1", v_int 99); ("s2", v_int 2) ])
  in
  let dt = Rules.fire_node fig1 ~env ~node:"T" [ ("R'", dr'); ("S'", ds') ] in
  let new_env name =
    match name with
    | "R'" -> Some (Rel_delta.apply (List.assoc "R'" populated) dr')
    | "S'" -> Some (Rel_delta.apply (List.assoc "S'" populated) ds')
    | n -> fig1_env populated n
  in
  let recomputed = Eval.eval ~env:new_env (Graph.def fig1 "T") in
  check_bag "fire_node = recompute" recomputed
    (Rel_delta.apply (List.assoc "T" populated) dt)

let contains_substring s sub =
  let rec go i =
    i + String.length sub <= String.length s
    && (String.sub s i (String.length sub) = sub || go (i + 1))
  in
  go 0

let test_rule_describe () =
  let text = Rules.describe fig1 in
  Alcotest.(check bool)
    "mentions rule for edge (T, R')" true
    (contains_substring text "on Δ(R')");
  Alcotest.(check bool)
    "mentions rule for edge (T, S')" true
    (contains_substring text "on Δ(S')")

(* --- annotation ------------------------------------------------------ *)

let test_annotation_basics () =
  let ann =
    Annotation.of_list fig1
      [ ("T", [ ("r1", Annotation.M); ("r3", Annotation.V); ("s1", Annotation.M); ("s2", Annotation.V) ]) ]
  in
  Alcotest.(check bool) "T hybrid" true (Annotation.is_hybrid ann "T");
  Alcotest.(check (list string))
    "materialized attrs" [ "r1"; "s1" ]
    (Annotation.materialized_attrs ann "T");
  Alcotest.(check (list string))
    "virtual attrs" [ "r3"; "s2" ]
    (Annotation.virtual_attrs ann "T");
  (* unlisted nodes default to fully materialized *)
  Alcotest.(check bool) "R' fully mat" true (Annotation.is_fully_materialized ann "R'")

let test_annotation_support () =
  let full = Annotation.fully_materialized fig1 in
  Alcotest.(check bool)
    "full materialization has full support" true
    (Annotation.has_fully_materialized_support full fig1 "T");
  let ex22 =
    Annotation.of_list fig1
      [ ("R'", List.map (fun a -> (a, Annotation.V)) [ "r1"; "r2"; "r3" ]) ]
  in
  Alcotest.(check bool)
    "virtual R' breaks T's materialized support (Example 2.2)" false
    (Annotation.has_fully_materialized_support ex22 fig1 "T")

let test_annotation_errors () =
  (try
     ignore (Annotation.of_list fig1 [ ("T", [ ("nope", Annotation.M) ]) ]);
     Alcotest.fail "expected Annotation_error"
   with Annotation.Annotation_error _ -> ());
  try
    ignore (Annotation.of_list fig1 [ ("R", [ ("r1", Annotation.M) ]) ]);
    Alcotest.fail "expected Annotation_error (leaf)"
  with Annotation.Annotation_error _ -> ()

(* --- advisor / cost --------------------------------------------------- *)

let test_advisor_example_2_2 () =
  (* frequent updates to R, rare updates to S: R' goes virtual, S'
     stays materialized *)
  let profile =
    {
      (Cost.uniform_profile ()) with
      Cost.update_rate = (function "R" -> 100.0 | _ -> 0.1);
      Cost.attr_access = (fun _ _ -> 1.0);
    }
  in
  let ann, _why = Advisor.advise fig1 profile in
  Alcotest.(check bool) "R' virtual" true (Annotation.is_fully_virtual ann "R'");
  Alcotest.(check bool) "S' materialized" true (Annotation.is_fully_materialized ann "S'");
  Alcotest.(check bool) "T materialized" true (Annotation.is_fully_materialized ann "T")

let test_advisor_example_5_1 () =
  (* B updates frequently; queries mostly touch a1,b1 of E. The paper's
     suggested annotation: B' and F virtual, E hybrid [a1^m,a2^v,b1^m],
     others materialized. *)
  let vdp = build_ex51 () in
  let profile =
    {
      (Cost.uniform_profile ()) with
      Cost.update_rate = (function "B" -> 50.0 | _ -> 1.0);
      Cost.attr_access =
        (fun node attr ->
          match (node, attr) with
          | "E", "a2" -> 0.01 (* rarely accessed *)
          | "G", _ -> 1.0
          | _ -> 0.9);
    }
  in
  let ann, _why = Advisor.advise vdp profile in
  Alcotest.(check bool) "B' virtual" true (Annotation.is_fully_virtual ann "B'");
  Alcotest.(check bool) "F virtual" true (Annotation.is_fully_virtual ann "F");
  Alcotest.(check bool) "A' materialized" true (Annotation.is_fully_materialized ann "A'");
  Alcotest.(check bool) "C' materialized" true (Annotation.is_fully_materialized ann "C'");
  Alcotest.(check (list string))
    "E hybrid [a1^m, a2^v, b1^m]"
    [ "a1"; "b1" ]
    (Annotation.materialized_attrs ann "E");
  Alcotest.(check bool) "G materialized" true (Annotation.is_fully_materialized ann "G")

let test_cost_expensive_join () =
  let vdp = build_ex51 () in
  Alcotest.(check bool) "E expensive" true (Cost.is_expensive_join vdp "E");
  Alcotest.(check bool) "F cheap (equi)" false (Cost.is_expensive_join vdp "F");
  Alcotest.(check bool) "T cheap" false (Cost.is_expensive_join fig1 "T")

let test_cost_estimates_rank () =
  (* with many queries and few updates, full materialization beats
     fully virtual on total operating cost; space ranks the other way *)
  let profile =
    {
      (Cost.uniform_profile ~cardinality:1000 ()) with
      Cost.update_rate = (fun _ -> 0.01);
      Cost.query_rate = (fun _ -> 100.0);
    }
  in
  let mat = Cost.estimate fig1 (Annotation.fully_materialized fig1) profile in
  let virt = Cost.estimate fig1 (Annotation.fully_virtual fig1) profile in
  Alcotest.(check bool) "materialized cheaper to run" true (Cost.total mat < Cost.total virt);
  Alcotest.(check bool) "virtual cheaper in space" true (virt.Cost.space_bytes < mat.Cost.space_bytes);
  (* and the reverse ranking under update-heavy, query-light load *)
  let profile' =
    {
      profile with
      Cost.update_rate = (fun _ -> 1000.0);
      Cost.query_rate = (fun _ -> 0.001);
    }
  in
  let mat' = Cost.estimate fig1 (Annotation.fully_materialized fig1) profile' in
  let virt' = Cost.estimate fig1 (Annotation.fully_virtual fig1) profile' in
  Alcotest.(check bool) "virtual cheaper under churn" true (Cost.total virt' < Cost.total mat')

(* --- restrict_def ------------------------------------------------------ *)

let test_restrict_def_equivalence () =
  (* narrowing internal projections to what a request needs must not
     change the result of the request *)
  let vdp = build_ex51 () in
  let values =
    (* fully populate every node bottom-up from sample leaf data *)
    let rng = Workload.Datagen.state 31 in
    let leaf_bags =
      List.map
        (fun (rel, schema) ->
          (rel, Workload.Datagen.bag rng schema (Workload.Scenario.ex51_update_specs rel) ~size:20))
        [ ("A", schema_a); ("B", schema_b); ("C", schema_c); ("D", schema_d) ]
    in
    let tbl = Hashtbl.create 16 in
    List.iter (fun (n, b) -> Hashtbl.replace tbl n b) leaf_bags;
    List.iter
      (fun node ->
        let v =
          Eval.eval ~env:(Hashtbl.find_opt tbl) (Graph.def vdp node)
        in
        Hashtbl.replace tbl node v)
      (Graph.topo_order vdp);
    tbl
  in
  let env = Hashtbl.find_opt values in
  List.iter
    (fun (node, attrs, cond) ->
      let original =
        Bag.project attrs
          (Bag.select cond (Eval.eval ~env (Graph.def vdp node)))
      in
      let restricted =
        Bag.project attrs
          (Bag.select cond
             (Eval.eval ~env (Derived_from.restrict_def vdp ~node ~attrs ~cond)))
      in
      Alcotest.(check bool)
        (Printf.sprintf "restrict_def(%s, {%s}) equivalent" node
           (String.concat "," attrs))
        true
        (Bag.equal original restricted))
    [
      ("E", [ "a1" ], Predicate.True);
      ("E", [ "a1"; "b1" ], Predicate.(lt (attr "a1") (int 10)));
      ("F", [ "b1" ], Predicate.True);
      ("G", [ "a1" ], Predicate.True);
      ("G", [ "a1"; "b1" ], Predicate.(gt (attr "b1") (int 3)));
    ]

(* --- dot rendering ------------------------------------------------------ *)

let test_dot_render () =
  let ann = Annotation.of_list fig1 [ ("T", [ ("r3", Annotation.V) ]) ] in
  let dot = Dot.render ~annotation:ann fig1 in
  List.iter
    (fun fragment ->
      Alcotest.(check bool)
        (Printf.sprintf "contains %S" fragment)
        true
        (contains_substring dot fragment))
    [
      "digraph vdp";
      "cluster_src_0";
      "\"R\" [shape=box";
      "doublecircle";
      "r3ᵛ";
      "\"R'\" -> \"T\"";
    ];
  (* without an annotation, no marks appear *)
  let plain = Dot.render fig1 in
  Alcotest.(check bool) "no marks" false (contains_substring plain "ᵛ")

let () =
  Alcotest.run "vdp"
    [
      ( "graph",
        [
          Alcotest.test_case "structure" `Quick test_graph_structure;
          Alcotest.test_case "topological order" `Quick test_graph_topo;
          Alcotest.test_case "descendants/ancestors" `Quick test_graph_descendants;
          Alcotest.test_case "rejects joining leaf-parent" `Quick test_graph_rejects_leaf_parent_join;
          Alcotest.test_case "rejects join under diff" `Quick test_graph_rejects_join_under_diff;
          Alcotest.test_case "rejects cycle" `Quick test_graph_rejects_cycle;
          Alcotest.test_case "rejects unexported maximal" `Quick test_graph_rejects_unexported_maximal;
          Alcotest.test_case "rejects schema mismatch" `Quick test_graph_rejects_schema_mismatch;
        ] );
      ( "builder",
        [
          Alcotest.test_case "Figure 1 structure" `Quick test_builder_fig1_structure;
          Alcotest.test_case "leaf-parent projection" `Quick test_builder_leaf_parent_projection;
          Alcotest.test_case "evaluation equivalence" `Quick test_builder_equivalence;
          Alcotest.test_case "Example 5.1 / Figure 4" `Quick test_builder_ex51;
          Alcotest.test_case "shared leaf-parents" `Quick test_builder_shared_leaf_parents;
          Alcotest.test_case "unknown relation" `Quick test_builder_unknown_relation;
        ] );
      ( "restrict_def",
        [ Alcotest.test_case "request equivalence" `Quick test_restrict_def_equivalence ] );
      ( "dot",
        [ Alcotest.test_case "rendering" `Quick test_dot_render ] );
      ( "derived_from",
        [
          Alcotest.test_case "SPJ case" `Quick test_derived_from_spj;
          Alcotest.test_case "difference includes output attrs" `Quick test_derived_from_diff_includes_output;
          Alcotest.test_case "needed_attrs_of_children" `Quick test_needed_attrs_of_children;
        ] );
      ( "rules",
        [
          Alcotest.test_case "Example 2.1 rule #1" `Quick test_rule_example_2_1;
          Alcotest.test_case "simultaneous deltas (Example 6.1)" `Quick test_rule_fire_node_simultaneous;
          Alcotest.test_case "rulebase description" `Quick test_rule_describe;
        ] );
      ( "annotation",
        [
          Alcotest.test_case "basics" `Quick test_annotation_basics;
          Alcotest.test_case "materialized support" `Quick test_annotation_support;
          Alcotest.test_case "errors" `Quick test_annotation_errors;
        ] );
      ( "advisor/cost",
        [
          Alcotest.test_case "Example 2.2 rates" `Quick test_advisor_example_2_2;
          Alcotest.test_case "Example 5.1 annotation" `Quick test_advisor_example_5_1;
          Alcotest.test_case "expensive join detection" `Quick test_cost_expensive_join;
          Alcotest.test_case "estimate ranking" `Quick test_cost_estimates_rank;
        ] );
    ]

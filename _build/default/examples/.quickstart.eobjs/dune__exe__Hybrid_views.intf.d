examples/hybrid_views.mli:

examples/custom_integration.mli:

examples/quickstart.ml: Bag Correctness Driver Engine List Med Mediator Printf Relalg Scenario Sim Source_db Sources Squirrel Tuple Value Workload

examples/two_exports.ml: Advisor Annotation Bag Correctness Cost Datagen Driver Engine Format Graph List Med Mediator Printf Relalg Scenario Sim Squirrel Vdp Workload

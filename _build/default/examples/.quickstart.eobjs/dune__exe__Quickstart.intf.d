examples/quickstart.mli:

examples/two_exports.mli:

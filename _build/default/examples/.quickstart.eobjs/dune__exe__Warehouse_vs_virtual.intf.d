examples/warehouse_vs_virtual.mli:

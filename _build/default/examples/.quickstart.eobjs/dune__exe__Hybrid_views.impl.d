examples/hybrid_views.ml: Bag Correctness Datagen Driver Engine Med Mediator Predicate Printf Relalg Scenario Sim Source_db Sources Squirrel Tuple Value Vdp Workload

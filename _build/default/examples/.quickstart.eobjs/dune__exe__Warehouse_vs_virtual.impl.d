examples/warehouse_vs_virtual.ml: Annotations Baselines Datagen Driver Engine List Med Mediator Printf Query_shipper Relalg Scenario Sim Squirrel Workload
